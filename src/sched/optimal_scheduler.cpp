#include "sched/optimal_scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "sched/list_scheduler.hpp"
#include "util/check.hpp"
#include "util/dominance_cache.hpp"
#include "util/metrics.hpp"
#include "util/profiler.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace pipesched {

namespace {

// flush_search_metrics, equivalence_classes, and latency_heights moved to
// sched/scheduler.{hpp,cpp}: they are shared by every optimal backend.

constexpr int kInfiniteCost = std::numeric_limits<int>::max() / 2;

/// One branching decision along a root-to-frontier path: which tuple was
/// placed and, on machines with heterogeneous alternatives, which
/// unit-signature group it was placed on (ignored when the opcode maps to
/// no pipeline or a single group).
struct PrefixStep {
  TupleIndex tuple;
  int group;
};

/// Seed for the second Zobrist table backing the dominance cache's
/// verification word. Any value different from ZobristKeys' default works;
/// what matters is that the two tables are independently random, so a
/// placed-set collision under one is vanishingly unlikely under both.
constexpr std::uint64_t kVerifyZobristSeed = 0xc0ffee5eedf00d42ull;

/// A frontier subtree root, identified by the decisions that reach it.
using Prefix = std::vector<PrefixStep>;

/// State shared by every worker of one parallel search.
///
/// Soundness of the shared incumbent: best_nops only ever DECREASES, so a
/// worker reading a stale value prunes with an equal-or-weaker alpha-beta
/// bound than the freshest one — it can only explore more, never less,
/// than a fully synchronized search would. Relaxed atomics therefore
/// suffice for the bound itself; the Schedule payload is published under
/// best_mutex with a double-check so the stored schedule always matches
/// the stored cost.
struct SharedSearch {
  std::atomic<int> best_nops{kInfiniteCost};
  std::mutex best_mutex;
  Schedule best;

  /// Global lambda ledger: workers drain local counts into it every
  /// kParallelOmegaFlushInterval omega calls (see the header constant for
  /// the resulting overshoot bound).
  std::atomic<std::uint64_t> omega_total{0};
  std::uint64_t curtail_lambda = 0;

  /// Set once by whichever worker first trips a budget; every other
  /// worker observes it at its next candidate-loop check and unwinds.
  std::atomic<bool> stop{false};
  std::atomic<bool> deadline_expired{false};
  std::atomic<int> curtail_reason{static_cast<int>(CurtailReason::None)};

  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline_at{};
};

class Search {
 public:

  Search(const Machine& machine, const DepGraph& dag,
         const SearchConfig& config, const PipelineState& initial)
      : machine_(machine),
        dag_(dag),
        config_(config),
        initial_(initial),
        timer_(machine, dag, initial),
        n_(dag.size()),
        classes_(equivalence_classes(machine, dag,
                                     config.strong_equivalence,
                                     config.max_live_registers > 0)),
        latency_height_(latency_heights(machine, dag)),
        zobrist_(dag.size()),
        zobrist2_(dag.size(), kVerifyZobristSeed) {
    if (config.dominance_cache && n_ > 0) {
      cache_.emplace(config.dominance_cache_bytes);
    }
  }

  OptimalResult run() {
    PS_TRACE_SPAN("optimal_search");
    PS_PROF_PHASE("bnb");
    SearchMonitor monitor("bnb");
    monitor_ = &monitor;
    // One enabled-check for the whole search: descend()'s hot-loop
    // markers test this plain pointer instead of the atomic enable flag
    // (measurably cheaper in the ~200ns/placement candidate loop).
    prof_ = profiler_active_stack();
    Timer wall;
    if (config_.deadline_seconds > 0) {
      has_deadline_ = true;
      deadline_at_ = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(
                             config_.deadline_seconds));
    }
    OptimalResult result;

    // Step [1]: evaluate the seed schedule; it becomes the incumbent pi.
    std::vector<TupleIndex> seed;
    if (config_.seed_with_list_schedule) {
      seed = list_schedule_order(dag_);
    } else {
      seed.resize(n_);
      for (std::size_t i = 0; i < n_; ++i) {
        seed[i] = static_cast<TupleIndex>(i);
      }
    }
    result.best = evaluate_order(machine_, dag_, seed, initial_);
    best_nops_ = result.best.total_nops();
    result.stats.initial_nops = best_nops_;

    init_from_seed(seed);
    if (config_.max_live_registers > 0 &&
        seed_max_pressure(seed) > config_.max_live_registers) {
      // The seed itself needs spill code; it cannot serve as incumbent.
      best_nops_ = kInfiniteCost;
      result.stats.feasible = false;
    }

    best_schedule_ = &result.best;
    stats_ = &result.stats;
    if (n_ > 0 && best_nops_ > 0) {
      if (prof_ != nullptr) {
        descend<true>();
      } else {
        descend<false>();
      }
    }
    // Every OBSERVED search contributes at least one heartbeat, even when
    // it finishes well inside the first 1,024-expansion tick. Gated on an
    // observer actually existing (tracing, profiling, or an armed
    // watchdog): the periodic slow_tick() feed stays unconditional, but a
    // sub-tick search in a fully dark run skips the clock read + ring
    // push — a measurable per-block constant on ~50us corpus blocks.
    if (trace_enabled() || profiler_enabled() || watchdog_enabled()) {
      emit_heartbeat();
    }
    monitor_ = nullptr;
    // An infeasible search found no schedule within the pressure ceiling;
    // `best` is still the (infeasible) seed, kept for diagnostics, but the
    // reported cost must not look like a real optimum.
    result.stats.best_nops =
        result.stats.feasible ? result.best.total_nops() : -1;
    if (cache_) {
      const DominanceCacheStats& cs = cache_->stats();
      result.stats.cache_probes = cs.probes;
      result.stats.cache_hits = cs.hits;
      result.stats.cache_misses = cs.misses;
      result.stats.cache_evictions = cs.evictions;
      result.stats.cache_superseded = cs.superseded;
      result.stats.cache_verified_rejects = cs.verified_rejects;
      result.stats.pruned_dominance = cs.hits;
    }
    result.stats.seconds = wall.seconds();
    flush_search_metrics(result.stats);
    return result;
  }

  // ---- Parallel-search interface (used only by run_parallel below) ----

  /// Switch this instance into shared (parallel) mode. `cache` may be
  /// null: the frontier builder shares budgets and the incumbent but must
  /// NOT touch the dominance cache — inserting frontier states would make
  /// every worker's first probe hit its own subtree root (same key, same
  /// cost) and prune the entire subtree before exploring it.
  void attach_shared(SharedSearch* shared, ShardedDominanceCache* cache) {
    shared_ = shared;
    shared_cache_ = cache;
  }

  /// Feed this ledger's heartbeats into a flight recorder. One monitor is
  /// shared by every worker of a parallel search: any worker's heartbeat
  /// proves the search as a whole is expanding nodes.
  void attach_monitor(SearchMonitor* monitor) { monitor_ = monitor; }

  /// Bind a stats ledger and rebuild the per-search tables from the seed
  /// order. In shared mode `feasible` starts false ("no complete schedule
  /// reached by THIS ledger yet"); the merge step ORs the ledgers and
  /// forces true for unconstrained searches.
  void prepare(const std::vector<TupleIndex>& seed, SearchStats* stats) {
    stats_ = stats;
    stats_->feasible = false;
    init_from_seed(seed);
    best_nops_ = shared_->best_nops.load(std::memory_order_relaxed);
  }

  /// Maximum simultaneously-live values of `seed` (prepare() first).
  int seed_pressure(const std::vector<TupleIndex>& order) {
    return seed_max_pressure(order);
  }

  /// Re-read the shared incumbent bound (after the driver reset it, e.g.
  /// when the seed turned out pressure-infeasible).
  void reload_incumbent() {
    best_nops_ = shared_->best_nops.load(std::memory_order_relaxed);
  }

  /// Breadth-first expansion of one frontier node: replay `prefix`, run
  /// the exact candidate loop descend() would run there — same rule
  /// order, same counters — but instead of recursing, append each
  /// surviving child prefix to `out`. Children that complete the schedule
  /// are evaluated against the shared incumbent on the spot. Returns false
  /// when a budget expired mid-expansion (the caller stops splitting).
  bool expand_node(const Prefix& prefix, std::deque<Prefix>& out) {
    for (const PrefixStep& s : prefix) replay_step(s);
    bool ok = true;
    ++stats_->nodes_expanded;
    if ((stats_->nodes_expanded & 1023u) == 0) slow_tick();
    best_nops_ = std::min(
        best_nops_, shared_->best_nops.load(std::memory_order_relaxed));

    const int position = static_cast<int>(timer_.depth()) + 1;
    TupleIndex forced = -1;
    if (config_.window_prune) {
      for (std::size_t i = 0; i < n_; ++i) {
        const auto index = static_cast<TupleIndex>(i);
        if (timer_.is_placed(index)) continue;
        if (dag_.latest_position(index) == position) {
          forced = index;
          break;
        }
      }
    }

    std::vector<char>& tried_classes = tried_stack_[timer_.depth()];
    std::fill(tried_classes.begin(), tried_classes.end(), 0);

    for (TupleIndex candidate : candidates_by_seed_) {
      if (!ok) break;
      if (curtailed()) {
        record_curtail();
        ok = false;
        break;
      }
      if (timer_.is_placed(candidate)) continue;
      if (unplaced_preds_[static_cast<std::size_t>(candidate)] != 0) {
        ++stats_->pruned_readiness;
        continue;
      }
      if (forced >= 0 && candidate != forced) {
        ++stats_->pruned_window;
        continue;
      }
      if (pressure_blocks(candidate)) {
        ++stats_->pruned_pressure;
        continue;
      }
      if (config_.equivalence_prune) {
        const int cls = classes_[static_cast<std::size_t>(candidate)];
        if (tried_classes[static_cast<std::size_t>(cls)]) {
          ++stats_->pruned_equivalence;
          continue;
        }
        tried_classes[static_cast<std::size_t>(cls)] = true;
      }

      const auto& groups =
          machine_.unit_groups(dag_.block().tuple(candidate).op);
      const std::size_t branches = groups.empty() ? 1 : groups.size();
      for (std::size_t g = 0; g < branches; ++g) {
        if (curtailed()) {
          record_curtail();
          ok = false;
          break;
        }
        count_omega();
        const PrefixStep step{candidate, static_cast<int>(g)};
        replay_step(step);
        if (timer_.depth() == n_) {
          // Complete schedule at the frontier: descend()'s leaf path
          // (examine + shared publication) and nothing to queue.
          ++stats_->schedules_examined;
          stats_->feasible = true;
          publish_leaf();
        } else {
          bool keep = true;
          if (config_.alpha_beta && timer_.total_nops() >= best_nops_) {
            keep = false;
            ++stats_->pruned_alpha_beta;
          }
          if (keep && config_.lower_bound_prune &&
              completion_lower_bound() - static_cast<int>(n_) >=
                  best_nops_) {
            keep = false;
            ++stats_->pruned_lower_bound;
          }
          if (keep) {
            out.push_back(prefix);
            out.back().push_back(step);
          }
        }
        unwind_step(step);
        if (best_nops_ == 0) {
          ok = false;  // provably optimal already; no point splitting on
          break;       // (not a curtail: completed stays true)
        }
      }
    }

    for (std::size_t i = prefix.size(); i-- > 0;) unwind_step(prefix[i]);
    return ok;
  }

  /// Explore one frontier subtree to completion (or curtailment) and
  /// return this worker's exact stats ledger. Runs on a pool thread; all
  /// cross-worker traffic goes through shared_/shared_cache_.
  SearchStats run_subtree(const std::vector<TupleIndex>& seed,
                          const Prefix& prefix) {
    PS_TRACE_SPAN("search_subtree");
    PS_PROF_PHASE("bnb");
    prof_ = profiler_active_stack();  // this worker thread's stack
    Timer wall;
    SearchStats stats;
    prepare(seed, &stats);
    if (best_nops_ > 0 && !curtailed()) {
      // Replaying the prefix is bookkeeping, not search: its omega calls
      // were counted when the frontier pass created these children.
      for (const PrefixStep& s : prefix) replay_step(s);
      if (prof_ != nullptr) {
        descend<true>();
      } else {
        descend<false>();
      }
    } else if (curtailed()) {
      record_curtail();
    }
    flush_omega();
    stats.cache_probes = cache_ledger_.probes;
    stats.cache_hits = cache_ledger_.hits;
    stats.cache_misses = cache_ledger_.misses;
    stats.cache_evictions = cache_ledger_.evictions;
    stats.cache_superseded = cache_ledger_.superseded;
    stats.cache_verified_rejects = cache_ledger_.verified_rejects;
    stats.pruned_dominance = cache_ledger_.hits;
    stats.seconds = wall.seconds();
    stats_ = nullptr;
    return stats;
  }

  /// Drain the local omega count into the global ledger (end of a
  /// worker's run, or whenever the flush interval fills).
  void flush_omega() {
    if (shared_ && omega_unflushed_ > 0) {
      shared_->omega_total.fetch_add(omega_unflushed_,
                                     std::memory_order_relaxed);
      omega_unflushed_ = 0;
    }
  }

 private:
  /// Rebuild every per-search table derived from the seed order (shared
  /// between the sequential run() and the parallel prepare()).
  void init_from_seed(const std::vector<TupleIndex>& seed) {
    seed_position_.assign(n_, 0);
    for (std::size_t i = 0; i < n_; ++i) {
      seed_position_[static_cast<std::size_t>(seed[i])] =
          static_cast<int>(i);
    }
    candidates_by_seed_ = seed;

    unplaced_preds_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      unplaced_preds_[i] =
          static_cast<int>(dag_.preds(static_cast<TupleIndex>(i)).size());
    }

    tried_stack_.assign(n_, std::vector<char>(n_ + 1, 0));

    // Register-pressure tracking (Section 3.1 discipline): remaining use
    // slots per value, and the live-value counter.
    if (config_.max_live_registers > 0) {
      remaining_uses_.assign(n_, 0);
      for (std::size_t i = 0; i < n_; ++i) {
        const Tuple& t = dag_.block().tuple(static_cast<TupleIndex>(i));
        for (const Operand* o : {&t.a, &t.b}) {
          if (o->is_ref()) {
            ++remaining_uses_[static_cast<std::size_t>(o->ref)];
          }
        }
      }
      total_uses_ = remaining_uses_;
      live_before_stack_.assign(n_, 0);
      live_ = 0;
    }
  }

  /// Apply one recorded branching decision: the push half of descend()'s
  /// Flip `t`'s membership in both incremental placed-set hashes (the
  /// primary key and the independent verification word track the same set
  /// through every push/pop/replay/unwind).
  void toggle_scheduled(TupleIndex t) {
    scheduled_hash_ ^= zobrist_.key(static_cast<std::size_t>(t));
    scheduled_hash2_ ^= zobrist2_.key(static_cast<std::size_t>(t));
  }

  /// loop body without any stats (used to replay prefixes and to expand
  /// frontier children, which do their own counting).
  void replay_step(const PrefixStep& s) {
    const auto& groups =
        machine_.unit_groups(dag_.block().tuple(s.tuple).op);
    if (groups.empty()) {
      timer_.push(s.tuple);
    } else {
      timer_.push(s.tuple, groups[static_cast<std::size_t>(s.group)]);
    }
    toggle_scheduled(s.tuple);
    pressure_push(s.tuple);
    for (TupleIndex succ : dag_.succs(s.tuple)) {
      --unplaced_preds_[static_cast<std::size_t>(succ)];
    }
  }

  void unwind_step(const PrefixStep& s) {
    for (TupleIndex succ : dag_.succs(s.tuple)) {
      ++unplaced_preds_[static_cast<std::size_t>(succ)];
    }
    pressure_pop(s.tuple);
    toggle_scheduled(s.tuple);
    timer_.pop();
  }

  /// One omega invocation, with the parallel ledger flush amortized to
  /// one atomic add per kParallelOmegaFlushInterval calls.
  void count_omega() {
    ++stats_->omega_calls;
    if (shared_ && ++omega_unflushed_ >= kParallelOmegaFlushInterval) {
      flush_omega();
    }
  }

  /// Shared-mode leaf: publish a strictly better complete schedule into
  /// the shared incumbent. Double-checked under the mutex so the stored
  /// schedule always matches the stored cost; the local bound re-syncs to
  /// whatever won the race.
  void publish_leaf() {
    const int cost = timer_.total_nops();
    if (cost >= best_nops_) return;
    best_nops_ = cost;
    std::lock_guard lock(shared_->best_mutex);
    if (cost < shared_->best_nops.load(std::memory_order_relaxed)) {
      shared_->best = timer_.snapshot();
      shared_->best_nops.store(cost, std::memory_order_relaxed);
      ++stats_->incumbent_improvements;
    } else {
      best_nops_ = shared_->best_nops.load(std::memory_order_relaxed);
    }
  }

  /// Cold path of the per-node bookkeeping, reached every 1,024
  /// expansions: the amortized wall-clock deadline check, with the
  /// heartbeat piggybacked on the same tick so instrumentation adds no
  /// second periodic branch to the hot loop.
  void slow_tick() {
    if (shared_) {
      if (shared_->has_deadline &&
          !shared_->deadline_expired.load(std::memory_order_relaxed) &&
          std::chrono::steady_clock::now() >= shared_->deadline_at) {
        shared_->deadline_expired.store(true, std::memory_order_relaxed);
      }
    } else if (has_deadline_ && !deadline_expired_ &&
               std::chrono::steady_clock::now() >= deadline_at_) {
      deadline_expired_ = true;
    }
    emit_heartbeat();
  }

  /// Sampled counter tracks that make a stuck or exploding search
  /// diagnosable on the timeline: total expansions, the incumbent cost
  /// (watch it stall), the dominance-cache hit rate, and the current
  /// search depth (distinguishes deep stalls from wide thrashing).
  ///
  /// The hit rate covers the interval SINCE THE PREVIOUS HEARTBEAT, not
  /// the search's lifetime: a cumulative ratio flattens into a meaningless
  /// long-run average precisely when a long search is the thing being
  /// diagnosed, while the per-interval delta shows the cache going cold
  /// (or hot) as the walk moves between regions of the tree.
  ///
  /// Runs unconditionally (tracing off included): the same snapshot also
  /// feeds the flight-recorder ring that the stall watchdog reads, and a
  /// watchdog blind in untraced runs would be useless exactly where it
  /// matters. Trace-event output stays gated inside trace_counter().
  void emit_heartbeat() {
    trace_counter("search/nodes_expanded",
                  static_cast<double>(stats_->nodes_expanded));
    if (best_nops_ < kInfiniteCost) {
      trace_counter("search/incumbent_nops", best_nops_);
    }
    std::uint64_t probes = 0;
    std::uint64_t hits = 0;
    if (shared_cache_) {
      probes = cache_ledger_.probes;
      hits = cache_ledger_.hits;
    } else if (cache_) {
      const DominanceCacheStats& cs = cache_->stats();
      probes = cs.probes;
      hits = cs.hits;
    }
    double hit_pct = 0;
    if (probes > hb_prev_probes_) {
      hit_pct = 100.0 * static_cast<double>(hits - hb_prev_hits_) /
                static_cast<double>(probes - hb_prev_probes_);
      trace_counter("search/cache_hit_pct", hit_pct);
      hb_prev_probes_ = probes;
      hb_prev_hits_ = hits;
    }
    trace_counter("search/depth", static_cast<double>(timer_.depth()));
    if (monitor_ != nullptr) {
      monitor_->heartbeat(stats_->nodes_expanded,
                          best_nops_ < kInfiniteCost ? best_nops_ : -1,
                          static_cast<std::uint32_t>(timer_.depth()),
                          hit_pct);
    }
  }

  /// Cooperative cancellation through SearchConfig::cancel (how the
  /// portfolio stops a losing racer). Checked alongside the budgets at
  /// every curtail point, so cancellation latency is one candidate loop.
  bool cancel_requested() const {
    return config_.cancel != nullptr &&
           config_.cancel->load(std::memory_order_relaxed);
  }

  bool curtailed() const {
    if (cancel_requested()) return true;
    if (shared_) {
      if (shared_->stop.load(std::memory_order_relaxed) ||
          shared_->deadline_expired.load(std::memory_order_relaxed)) {
        return true;
      }
      // Count our unflushed tail on top of the global ledger so a lone
      // worker still curtails within one flush interval of lambda.
      return shared_->curtail_lambda != 0 &&
             shared_->omega_total.load(std::memory_order_relaxed) +
                     omega_unflushed_ >=
                 shared_->curtail_lambda;
    }
    return deadline_expired_ ||
           (config_.curtail_lambda != 0 &&
            stats_->omega_calls >= config_.curtail_lambda);
  }

  /// Mark the search truncated and record which budget fired.
  /// Cancellation outranks the deadline outranks lambda: once a stronger
  /// signal arrived, the weaker budget no longer describes why we
  /// stopped. In shared mode the FIRST worker to trip a budget publishes
  /// the reason and raises the stop flag; workers that unwind because of
  /// the flag adopt the published reason, so every ledger of one
  /// curtailed parallel search reports the same cause.
  void record_curtail() {
    stats_->completed = false;
    if (shared_) {
      int expected = static_cast<int>(CurtailReason::None);
      const int mine = static_cast<int>(
          cancel_requested() ? CurtailReason::Cancelled
          : shared_->deadline_expired.load(std::memory_order_relaxed)
              ? CurtailReason::Deadline
              : CurtailReason::Lambda);
      shared_->curtail_reason.compare_exchange_strong(expected, mine);
      shared_->stop.store(true, std::memory_order_relaxed);
      stats_->curtail_reason = static_cast<CurtailReason>(
          shared_->curtail_reason.load(std::memory_order_relaxed));
      return;
    }
    stats_->curtail_reason = cancel_requested() ? CurtailReason::Cancelled
                             : deadline_expired_ ? CurtailReason::Deadline
                                                 : CurtailReason::Lambda;
  }

  /// Admissible lower bound on the final issue cycle of any completion of
  /// the current partial schedule.
  int completion_lower_bound() const {
    const int t_now = timer_.last_issue_cycle();
    const std::size_t remaining = n_ - timer_.depth();
    int bound = t_now + static_cast<int>(remaining);
    for (std::size_t i = 0; i < n_; ++i) {
      const auto index = static_cast<TupleIndex>(i);
      if (timer_.is_placed(index) || unplaced_preds_[i] != 0) continue;
      // Ready instruction: its earliest issue is bounded by its placed
      // producers, and a latency-weighted chain hangs below it.
      int earliest = t_now + 1;
      for (TupleIndex p : dag_.preds(index)) {
        const int latency = machine_.latency_for(dag_.block().tuple(p).op);
        earliest = std::max(earliest, timer_.issue_cycle_of(p) + latency);
      }
      bound = std::max(bound, earliest + latency_height_[i]);
    }
    return bound;
  }

  /// Maximum simultaneously-live values along `order` (the allocator's
  /// convention: an instruction's result is live concurrently with its
  /// operands).
  int seed_max_pressure(const std::vector<TupleIndex>& order) {
    std::vector<int> uses = total_uses_;
    int live = 0;
    int peak = 0;
    for (TupleIndex t : order) {
      const Tuple& tuple = dag_.block().tuple(t);
      const bool result = opcode_has_result(tuple.op);
      peak = std::max(peak, live + (result ? 1 : 0));
      if (result) ++live;
      for (const Operand* o : {&tuple.a, &tuple.b}) {
        if (o->is_ref() &&
            --uses[static_cast<std::size_t>(o->ref)] == 0) {
          --live;
        }
      }
      if (result && total_uses_[static_cast<std::size_t>(t)] == 0) --live;
    }
    return peak;
  }

  /// Would placing `t` now exceed the pressure ceiling?
  bool pressure_blocks(TupleIndex t) const {
    if (config_.max_live_registers <= 0) return false;
    const bool result = opcode_has_result(dag_.block().tuple(t).op);
    return live_ + (result ? 1 : 0) > config_.max_live_registers;
  }

  void pressure_push(TupleIndex t) {
    if (config_.max_live_registers <= 0) return;
    live_before_stack_[timer_.depth() - 1] = live_;
    const Tuple& tuple = dag_.block().tuple(t);
    if (opcode_has_result(tuple.op)) ++live_;
    for (const Operand* o : {&tuple.a, &tuple.b}) {
      if (o->is_ref() &&
          --remaining_uses_[static_cast<std::size_t>(o->ref)] == 0) {
        --live_;
      }
    }
    if (opcode_has_result(tuple.op) &&
        total_uses_[static_cast<std::size_t>(t)] == 0) {
      --live_;
    }
  }

  void pressure_pop(TupleIndex t) {
    if (config_.max_live_registers <= 0) return;
    const Tuple& tuple = dag_.block().tuple(t);
    for (const Operand* o : {&tuple.a, &tuple.b}) {
      if (o->is_ref()) ++remaining_uses_[static_cast<std::size_t>(o->ref)];
    }
    live_ = live_before_stack_[timer_.depth() - 1];
  }

  /// True when placed tuple `t` still has an unplaced consumer (only then
  /// does its pending latency constrain future placements).
  bool has_unplaced_succ(TupleIndex t) const {
    for (TupleIndex s : dag_.succs(t)) {
      if (!timer_.is_placed(s)) return true;
    }
    return false;
  }

  /// Canonical search-state key: the Zobrist hash of the placed set,
  /// XOR-folded (order-independently) with every timing residue that can
  /// still constrain a future placement, expressed RELATIVE to the next
  /// issue slot t_now + 1 so that transpositions reaching the same
  /// constellation at different absolute cycles still collide:
  ///
  ///   * each unit whose next-accept cycle lies beyond the next slot
  ///     (enqueue conflict residue), as (unit, cycles-beyond);
  ///   * each placed producer whose result becomes available beyond the
  ///     next slot AND is still awaited by an unplaced consumer
  ///     (dependence residue), as (tuple, cycles-beyond).
  ///
  /// Everything else the future cost depends on — ready sets, window
  /// positions, equivalence classes, live-register counts — is a function
  /// of the placed set alone. Two states with equal keys therefore admit
  /// the same completions at the same incremental cost. A bare 64-bit
  /// equality is still not trusted: the same residues are folded through
  /// a second, independent hash family (zobrist2_/hash64_alt) into a
  /// verification word, and the dominance cache requires both words to
  /// match before it prunes (see dominance_cache.hpp).
  struct StateKey {
    std::uint64_t key;
    std::uint64_t verify;
  };

  StateKey state_key() const {
    std::uint64_t h = scheduled_hash_;
    std::uint64_t h2 = scheduled_hash2_;
    const int t_next = timer_.last_issue_cycle() + 1;

    for (std::size_t u = 0; u < machine_.pipeline_count(); ++u) {
      const auto unit = static_cast<PipelineId>(u);
      const int ready =
          timer_.unit_last_issue(unit) + machine_.pipeline(unit).enqueue;
      if (ready > t_next) {
        const std::uint64_t pack = (std::uint64_t{1} << 48) |
                                   (static_cast<std::uint64_t>(u) << 32) |
                                   static_cast<std::uint64_t>(ready - t_next);
        h ^= hash64(pack);
        h2 ^= hash64_alt(pack);
      }
    }

    // Placements are in issue order, so only a bounded tail can still
    // carry latency past the next slot.
    const auto& placements = timer_.placements();
    const int max_latency = machine_.max_latency();
    for (std::size_t i = placements.size(); i-- > 0;) {
      const auto& p = placements[i];
      if (p.issue_cycle + max_latency <= t_next) break;
      const int latency =
          p.unit == kNoPipeline ? 0 : machine_.pipeline(p.unit).latency;
      const int available = p.issue_cycle + latency;
      if (available <= t_next) continue;
      if (!has_unplaced_succ(p.tuple)) continue;
      const std::uint64_t pack =
          (std::uint64_t{2} << 48) |
          (static_cast<std::uint64_t>(p.tuple) << 32) |
          static_cast<std::uint64_t>(available - t_next);
      h ^= hash64(pack);
      h2 ^= hash64_alt(pack);
    }
    return StateKey{h, h2};
  }

  /// The recursion is instantiated twice: kProf=false is the everyday
  /// build with every phase marker constant-folded away (profiling off
  /// must cost nothing in the ~200ns/placement loop), kProf=true carries
  /// the markers. run()/run_subtree() pick the instantiation once per
  /// search from the captured prof_ pointer.
  template <bool kProf>
  void descend() {
    ++stats_->nodes_expanded;
    // Amortized slow work (deadline clock read, trace heartbeat) runs
    // once per ~1024 node expansions so the hot loop pays one predictable
    // branch per node.
    if ((stats_->nodes_expanded & 1023u) == 0) slow_tick();
    // Shared incumbent refresh: the bound only tightens, so a relaxed
    // read of a stale value merely prunes less than the freshest bound
    // would — never more (the soundness argument on SharedSearch).
    if (shared_) {
      best_nops_ = std::min(
          best_nops_, shared_->best_nops.load(std::memory_order_relaxed));
    }
    if (timer_.depth() == n_) {
      ++stats_->schedules_examined;
      stats_->feasible = true;
      if (shared_) {
        PS_PROF_PHASE_AT(kProf ? prof_ : nullptr, "incumbent_publish");
        publish_leaf();
        return;
      }
      // Alpha-beta guarantees we only reach completion strictly below the
      // incumbent (when enabled); compare anyway for the ablation modes.
      if (timer_.total_nops() < best_nops_) {
        PS_PROF_PHASE_AT(kProf ? prof_ : nullptr, "incumbent_publish");
        best_nops_ = timer_.total_nops();
        *best_schedule_ = timer_.snapshot();
        ++stats_->incumbent_improvements;
      }
      return;
    }

    // Dominance prune: an earlier visit of this exact scheduler state at
    // equal-or-lower partial cost has already explored (or soundly
    // pruned) every completion reachable from here. The incumbent only
    // ever improves, so the earlier visit ran under an equal-or-weaker
    // alpha-beta bound and cannot have cut anything this branch would
    // keep. Equal-cost revisits are pruned too: that discards alternative
    // optima reachable through this state, never all of them. The same
    // holds across workers in shared mode: the cache entry is inserted
    // BEFORE the subtree is explored, and a curtailed exploration flips
    // the whole result to possibly-suboptimal anyway.
    if (timer_.depth() > 0) {
      PS_PROF_PHASE_AT(kProf ? prof_ : nullptr, "dominance_probe");
      if (shared_cache_) {
        const StateKey sk = state_key();
        if (shared_cache_->probe_and_update(sk.key, sk.verify,
                                            static_cast<int>(timer_.depth()),
                                            timer_.total_nops(),
                                            cache_ledger_)) {
          return;
        }
      } else if (cache_) {
        const StateKey sk = state_key();
        if (cache_->probe_and_update(sk.key, sk.verify,
                                     static_cast<int>(timer_.depth()),
                                     timer_.total_nops())) {
          return;
        }
      }
    }

    const int position = static_cast<int>(timer_.depth()) + 1;  // 1-based

    // Window rule from [5a]: an unscheduled instruction whose latest legal
    // position equals the slot being filled must be scheduled now; at most
    // one such instruction can exist, and it is necessarily ready.
    TupleIndex forced = -1;
    if (config_.window_prune) {
      for (std::size_t i = 0; i < n_; ++i) {
        const auto index = static_cast<TupleIndex>(i);
        if (timer_.is_placed(index)) continue;
        if (dag_.latest_position(index) == position) {
          forced = index;
          break;
        }
      }
      PS_ASSERT(forced < 0 || unplaced_preds_[static_cast<std::size_t>(
                                  forced)] == 0);
    }

    // Per-depth record of equivalence classes already tried at this slot
    // (rule [5c] only filters alternatives for the *same* position).
    std::vector<char>& tried_classes = tried_stack_[timer_.depth()];
    std::fill(tried_classes.begin(), tried_classes.end(), 0);

    for (TupleIndex candidate : candidates_by_seed_) {
      if (curtailed()) {
        record_curtail();
        return;
      }
      {
        // Rules [5a]-[5c] + pressure: the per-candidate filters. The
        // marker scope ends before the group loop so the push/descend/
        // undo work below is attributed to its own phases (and never
        // stacks under the recursion).
        PS_PROF_PHASE_AT(kProf ? prof_ : nullptr, "candidate_filter");
        if (timer_.is_placed(candidate)) continue;
        if (unplaced_preds_[static_cast<std::size_t>(candidate)] != 0) {
          ++stats_->pruned_readiness;  // rule [5b]
          continue;
        }
        if (forced >= 0 && candidate != forced) {
          ++stats_->pruned_window;  // rule [5a]
          continue;
        }
        if (pressure_blocks(candidate)) {
          ++stats_->pruned_pressure;
          continue;
        }

        if (config_.equivalence_prune) {
          const int cls = classes_[static_cast<std::size_t>(candidate)];
          if (tried_classes[static_cast<std::size_t>(cls)]) {
            ++stats_->pruned_equivalence;  // rule [5c]
            continue;
          }
          tried_classes[static_cast<std::size_t>(cls)] = true;
        }
      }

      // Branch over the candidate's unit-signature groups (footnote 3's
      // generalization): homogeneous ops have exactly one group, so the
      // paper's machines take a single pass here.
      const auto& groups =
          machine_.unit_groups(dag_.block().tuple(candidate).op);
      const std::size_t branches = groups.empty() ? 1 : groups.size();
      for (std::size_t g = 0; g < branches; ++g) {
        if (curtailed()) {
          record_curtail();
          return;
        }
        {
          // Omega's incremental append: the placement itself plus every
          // piece of state pushed alongside it.
          PS_PROF_PHASE_AT(kProf ? prof_ : nullptr, "omega_append");
          count_omega();
          if (groups.empty()) {
            timer_.push(candidate);
          } else {
            timer_.push(candidate, groups[g]);
          }
          toggle_scheduled(candidate);
          pressure_push(candidate);
          for (TupleIndex s : dag_.succs(candidate)) {
            --unplaced_preds_[static_cast<std::size_t>(s)];
          }
        }

        bool keep = true;
        if (config_.alpha_beta && timer_.total_nops() >= best_nops_) {
          keep = false;  // rule [6]
          ++stats_->pruned_alpha_beta;
        }
        if (keep && config_.lower_bound_prune) {
          PS_PROF_PHASE_AT(kProf ? prof_ : nullptr, "lower_bound");
          if (completion_lower_bound() - static_cast<int>(n_) >=
              best_nops_) {
            keep = false;
            ++stats_->pruned_lower_bound;
          }
        }
        if (keep) descend<kProf>();

        {
          PS_PROF_PHASE_AT(kProf ? prof_ : nullptr, "omega_undo");
          for (TupleIndex s : dag_.succs(candidate)) {
            ++unplaced_preds_[static_cast<std::size_t>(s)];
          }
          pressure_pop(candidate);
          toggle_scheduled(candidate);
          timer_.pop();
        }

        if (!stats_->completed) return;    // curtailed deeper in the tree
        if (best_nops_ == 0) return;       // cannot improve on zero NOPs
      }
    }
  }

  const Machine& machine_;
  const DepGraph& dag_;
  const SearchConfig& config_;
  const PipelineState& initial_;
  PipelineTimer timer_;
  const std::size_t n_;
  std::vector<int> classes_;
  std::vector<int> latency_height_;
  std::vector<int> seed_position_;
  std::vector<TupleIndex> candidates_by_seed_;
  std::vector<int> unplaced_preds_;
  std::vector<std::vector<char>> tried_stack_;
  std::vector<int> remaining_uses_;
  std::vector<int> total_uses_;
  std::vector<int> live_before_stack_;
  ZobristKeys zobrist_;
  ZobristKeys zobrist2_;  // independent table for the verification word
  std::optional<DominanceCache> cache_;
  std::chrono::steady_clock::time_point deadline_at_{};
  bool has_deadline_ = false;
  bool deadline_expired_ = false;
  std::uint64_t scheduled_hash_ = 0;
  std::uint64_t scheduled_hash2_ = 0;
  int live_ = 0;
  int best_nops_ = 0;
  Schedule* best_schedule_ = nullptr;
  SearchStats* stats_ = nullptr;

  // Parallel-mode wiring; both null in the sequential path, which keeps
  // every shared-mode branch in the hot loop a never-taken predictable
  // branch (the 1-thread search stays bit-identical to previous releases).
  SharedSearch* shared_ = nullptr;
  ShardedDominanceCache* shared_cache_ = nullptr;
  SearchMonitor* monitor_ = nullptr;  ///< flight recorder (may be null)
  prof_detail::PhaseStack* prof_ = nullptr;  ///< this thread's phase stack
                                             ///< (null = profiler off)
  DominanceCacheStats cache_ledger_;   // this worker's exact cache traffic
  std::uint64_t omega_unflushed_ = 0;  // local tail of the global ledger
  std::uint64_t hb_prev_probes_ = 0;   // heartbeat-delta baselines
  std::uint64_t hb_prev_hits_ = 0;
};

/// Frontier-split parallel branch-and-bound. The search tree is first
/// expanded breadth-first (reusing descend()'s exact candidate rules)
/// until at least threads x 8 disjoint subtree roots exist — enough
/// slack for the FIFO pool to rebalance when subtree sizes differ by
/// orders of magnitude, which they routinely do. Each subtree is then an
/// independent task sharing the incumbent, the sharded dominance cache,
/// and the global lambda/deadline budgets. Exhaustive runs return the
/// same best_nops as the sequential search (subtrees partition exactly
/// the branches the sequential candidate loop would take, and every
/// shared component only strengthens pruning soundly — see DESIGN.md
/// section 3.5).
OptimalResult run_parallel(const Machine& machine, const DepGraph& dag,
                           const SearchConfig& config,
                           const PipelineState& initial,
                           std::size_t threads) {
  PS_TRACE_SPAN("optimal_search");
  PS_PROF_PHASE("bnb");
  SearchMonitor monitor("bnb");
  Timer wall;
  OptimalResult result;
  result.parallel.emplace();
  OptimalResult::ParallelDetail& detail = *result.parallel;
  const std::size_t n = dag.size();

  // Step [1]: the seed schedule becomes the shared incumbent.
  std::vector<TupleIndex> seed;
  if (config.seed_with_list_schedule) {
    seed = list_schedule_order(dag);
  } else {
    seed.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      seed[i] = static_cast<TupleIndex>(i);
    }
  }
  result.best = evaluate_order(machine, dag, seed, initial);
  const int seed_nops = result.best.total_nops();

  SharedSearch shared;
  shared.curtail_lambda = config.curtail_lambda;
  if (config.deadline_seconds > 0) {
    shared.has_deadline = true;
    shared.deadline_at =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(config.deadline_seconds));
  }
  shared.best = result.best;
  shared.best_nops.store(seed_nops, std::memory_order_relaxed);

  // The frontier builder shares budgets and the incumbent but NOT the
  // dominance cache (attach_shared explains why frontier states must
  // stay out of it).
  Search builder(machine, dag, config, initial);
  builder.attach_shared(&shared, nullptr);
  builder.attach_monitor(&monitor);
  builder.prepare(seed, &detail.frontier);
  detail.frontier.initial_nops = seed_nops;

  bool seed_feasible = true;
  if (config.max_live_registers > 0 &&
      builder.seed_pressure(seed) > config.max_live_registers) {
    // The seed needs spill code; it cannot serve as incumbent.
    seed_feasible = false;
    shared.best_nops.store(kInfiniteCost, std::memory_order_relaxed);
    builder.reload_incumbent();
  }

  // Frontier pass: pop the shallowest prefix, expand it, re-queue its
  // children; the FIFO order makes this a plain breadth-first walk, so
  // the queue holds a complete partition of the unexplored tree at every
  // step. Stops once the partition is wide enough, the tree is exhausted
  // (every branch ended in an evaluated leaf), the optimum is proven
  // (zero NOPs), or a budget expires.
  std::deque<Prefix> queue;
  const std::size_t target = threads * 8;
  bool split_ok = true;
  if (n > 0 && shared.best_nops.load(std::memory_order_relaxed) > 0) {
    PS_PROF_PHASE("frontier_split");
    queue.push_back({});
    while (split_ok && !queue.empty() && queue.size() < target) {
      Prefix prefix = std::move(queue.front());
      queue.pop_front();
      split_ok = builder.expand_node(prefix, queue);
    }
  }
  builder.flush_omega();
  std::vector<Prefix> subtrees(queue.begin(), queue.end());

  if (split_ok && !subtrees.empty() &&
      shared.best_nops.load(std::memory_order_relaxed) > 0) {
    std::optional<ShardedDominanceCache> shared_cache;
    if (config.dominance_cache) {
      // More shards than threads so two workers rarely contend even when
      // their key streams are bursty.
      shared_cache.emplace(config.dominance_cache_bytes, threads * 4);
    }
    detail.subtrees.resize(subtrees.size());
    ThreadPool pool(threads, "search-worker-");
    parallel_for_each(pool, subtrees.size(), [&](std::size_t i) {
      Search worker(machine, dag, config, initial);
      worker.attach_shared(&shared,
                           shared_cache ? &*shared_cache : nullptr);
      worker.attach_monitor(&monitor);
      detail.subtrees[i] = worker.run_subtree(seed, subtrees[i]);
    });
  }

  // Merge: counters add, completed is the conjunction, feasible the
  // disjunction (the seed itself counts when it met the ceiling).
  SearchStats merged = detail.frontier;
  for (const SearchStats& ws : detail.subtrees) {
    merged.omega_calls += ws.omega_calls;
    merged.schedules_examined += ws.schedules_examined;
    merged.completed = merged.completed && ws.completed;
    merged.pruned_window += ws.pruned_window;
    merged.pruned_readiness += ws.pruned_readiness;
    merged.pruned_equivalence += ws.pruned_equivalence;
    merged.pruned_alpha_beta += ws.pruned_alpha_beta;
    merged.pruned_lower_bound += ws.pruned_lower_bound;
    merged.pruned_dominance += ws.pruned_dominance;
    merged.pruned_pressure += ws.pruned_pressure;
    merged.nodes_expanded += ws.nodes_expanded;
    merged.cache_probes += ws.cache_probes;
    merged.cache_hits += ws.cache_hits;
    merged.cache_misses += ws.cache_misses;
    merged.cache_evictions += ws.cache_evictions;
    merged.cache_superseded += ws.cache_superseded;
    merged.cache_verified_rejects += ws.cache_verified_rejects;
    merged.incumbent_improvements += ws.incumbent_improvements;
    merged.feasible = merged.feasible || ws.feasible;
  }
  if (config.max_live_registers <= 0) {
    merged.feasible = true;
  } else {
    merged.feasible = merged.feasible || seed_feasible;
  }
  merged.curtail_reason =
      merged.completed
          ? CurtailReason::None
          : static_cast<CurtailReason>(
                shared.curtail_reason.load(std::memory_order_relaxed));
  merged.initial_nops = seed_nops;
  // Subtrees actually handed to workers: 0 when the frontier pass alone
  // settled the search (tree exhausted, optimum of zero proven, or a
  // budget expired before the split finished).
  merged.frontier_subtrees = detail.subtrees.size();

  result.best = shared.best;
  merged.best_nops = merged.feasible ? result.best.total_nops() : -1;
  merged.seconds = wall.seconds();
  result.stats = merged;
  flush_search_metrics(result.stats);
  return result;
}

}  // namespace

OptimalResult optimal_schedule(const Machine& machine, const DepGraph& dag,
                               const SearchConfig& config,
                               const PipelineState& initial) {
  std::size_t threads = config.search_threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(
        1, std::thread::hardware_concurrency());
  }
  // Single-tuple blocks have a one-node tree: nothing to split. The
  // 1-thread path is the untouched sequential algorithm, bit-identical
  // to previous releases.
  if (threads > 1 && dag.size() >= 2) {
    return run_parallel(machine, dag, config, initial, threads);
  }
  Search search(machine, dag, config, initial);
  return search.run();
}

}  // namespace pipesched
