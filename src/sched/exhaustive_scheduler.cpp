#include "sched/exhaustive_scheduler.hpp"

#include "util/check.hpp"
#include <utility>
#include "util/timer.hpp"

namespace pipesched {

namespace {

struct ExhaustiveState {
  const DepGraph* dag;
  PipelineTimer* timer;
  std::vector<int> unplaced_preds;
  ExhaustiveResult* result;
  std::uint64_t max_schedules;
  int best_nops = -1;  // -1 = no complete schedule yet

  bool budget_left() const {
    return max_schedules == 0 ||
           result->schedules_examined < max_schedules;
  }
};

void descend(ExhaustiveState& state) {
  const std::size_t n = state.dag->size();
  if (state.timer->depth() == n) {
    ++state.result->schedules_examined;
    const int mu = state.timer->total_nops();
    if (state.best_nops < 0 || mu < state.best_nops) {
      state.best_nops = mu;
      state.result->best = state.timer->snapshot();
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!state.budget_left()) {
      state.result->completed = false;
      return;
    }
    if (state.unplaced_preds[i] != 0 ||
        state.timer->is_placed(static_cast<TupleIndex>(i))) {
      continue;
    }
    // Ground truth must branch over heterogeneous unit-signature groups
    // exactly like the optimal search (one group for homogeneous ops).
    const auto& groups = state.timer->machine().unit_groups(
        state.dag->block().tuple(static_cast<TupleIndex>(i)).op);
    const std::size_t branches = groups.empty() ? 1 : groups.size();
    for (std::size_t g = 0; g < branches && state.budget_left(); ++g) {
      if (groups.empty()) {
        state.timer->push(static_cast<TupleIndex>(i));
      } else {
        state.timer->push(static_cast<TupleIndex>(i), groups[g]);
      }
      for (TupleIndex s : state.dag->succs(static_cast<TupleIndex>(i))) {
        --state.unplaced_preds[static_cast<std::size_t>(s)];
      }
      descend(state);
      for (TupleIndex s : state.dag->succs(static_cast<TupleIndex>(i))) {
        ++state.unplaced_preds[static_cast<std::size_t>(s)];
      }
      state.timer->pop();
    }
  }
}

}  // namespace

ExhaustiveResult exhaustive_schedule(const Machine& machine,
                                     const DepGraph& dag,
                                     std::uint64_t max_schedules) {
  ExhaustiveResult result;
  PipelineTimer timer(machine, dag);
  ExhaustiveState state;
  state.dag = &dag;
  state.timer = &timer;
  state.unplaced_preds.resize(dag.size());
  for (std::size_t i = 0; i < dag.size(); ++i) {
    state.unplaced_preds[i] =
        static_cast<int>(dag.preds(static_cast<TupleIndex>(i)).size());
  }
  state.result = &result;
  state.max_schedules = max_schedules;
  descend(state);
  PS_CHECK(result.schedules_examined > 0 || dag.size() == 0,
           "exhaustive search evaluated no schedule (cap too small?)");
  return result;
}

ScheduleResult ExhaustiveScheduler::run(const Machine& machine,
                                        const DepGraph& dag,
                                        const PipelineState&) const {
  Timer wall;
  ExhaustiveResult searched = exhaustive_schedule(machine, dag);
  ScheduleResult result;
  result.schedule = std::move(searched.best);
  result.stats.schedules_examined = searched.schedules_examined;
  result.stats.omega_calls = searched.schedules_examined;
  result.stats.completed = searched.completed;
  result.stats.initial_nops = result.schedule.total_nops();
  result.stats.best_nops = result.stats.initial_nops;
  result.stats.seconds = wall.seconds();
  return result;
}

}  // namespace pipesched
