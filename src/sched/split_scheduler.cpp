#include "sched/split_scheduler.hpp"

#include <algorithm>

#include "sched/list_scheduler.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace pipesched {

namespace {

/// Branch-and-bound over one window of instructions, extending the shared
/// timer. Local alpha-beta: window cost relative to the incumbent window
/// cost; the incumbent is the window in list order.
class WindowSearch {
 public:
  WindowSearch(const DepGraph& dag, PipelineTimer& timer,
               const SearchConfig& config,
               const std::vector<TupleIndex>& window)
      : dag_(dag), timer_(timer), config_(config), window_(window) {}

  /// Returns the locally optimal window order; accumulates stats.
  /// Sets stats.completed = false when this window's search was curtailed.
  std::vector<TupleIndex> run(SearchStats& stats) {
    stats_ = &stats;
    lambda_base_ = stats.omega_calls;

    // Incumbent: the window in list order (always legal).
    base_nops_ = timer_.total_nops();
    for (TupleIndex t : window_) timer_.push(t);
    best_cost_ = timer_.total_nops() - base_nops_;
    best_order_ = window_;
    for (std::size_t k = 0; k < window_.size(); ++k) timer_.pop();

    if (best_cost_ > 0) descend();
    if (truncated_) stats.completed = false;
    return best_order_;
  }

 private:
  bool curtailed() const {
    return config_.curtail_lambda != 0 &&
           stats_->omega_calls - lambda_base_ >= config_.curtail_lambda;
  }

  void descend() {
    if (current_.size() == window_.size()) {
      ++stats_->schedules_examined;
      const int cost = timer_.total_nops() - base_nops_;
      if (cost < best_cost_) {
        best_cost_ = cost;
        best_order_ = current_;
      }
      return;
    }
    for (TupleIndex candidate : window_) {
      if (curtailed()) {
        truncated_ = true;
        return;
      }
      if (timer_.is_placed(candidate)) continue;
      // Readiness: preds in earlier windows are already pushed, preds in
      // this window must be in `current_` — both reduce to is_placed().
      bool ready = true;
      for (TupleIndex p : dag_.preds(candidate)) {
        if (!timer_.is_placed(p)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;

      ++stats_->omega_calls;
      timer_.push(candidate);
      current_.push_back(candidate);
      const bool keep = !config_.alpha_beta ||
                        timer_.total_nops() - base_nops_ < best_cost_;
      if (keep) descend();
      current_.pop_back();
      timer_.pop();
      if (truncated_) return;
      if (best_cost_ == 0) return;
    }
  }

  const DepGraph& dag_;
  PipelineTimer& timer_;
  const SearchConfig& config_;
  const std::vector<TupleIndex>& window_;
  std::vector<TupleIndex> current_;
  std::vector<TupleIndex> best_order_;
  int best_cost_ = 0;
  int base_nops_ = 0;
  std::uint64_t lambda_base_ = 0;
  bool truncated_ = false;
  SearchStats* stats_ = nullptr;
};

}  // namespace

SplitResult split_schedule(const Machine& machine, const DepGraph& dag,
                           const SplitConfig& config) {
  PS_CHECK(config.window_size >= 1, "window size must be positive");
  Timer wall;
  SplitResult result;

  const std::vector<TupleIndex> list_order = list_schedule_order(dag);
  result.stats.initial_nops =
      evaluate_order(machine, dag, list_order).total_nops();

  PipelineTimer timer(machine, dag);
  const std::size_t n = list_order.size();
  for (std::size_t begin = 0; begin < n;
       begin += static_cast<std::size_t>(config.window_size)) {
    const std::size_t end =
        std::min(n, begin + static_cast<std::size_t>(config.window_size));
    const std::vector<TupleIndex> window(
        list_order.begin() + static_cast<std::ptrdiff_t>(begin),
        list_order.begin() + static_cast<std::ptrdiff_t>(end));
    WindowSearch search(dag, timer, config.search, window);
    const std::vector<TupleIndex> best = search.run(result.stats);
    for (TupleIndex t : best) timer.push(t);
    ++result.windows;
  }

  result.schedule = timer.snapshot();
  result.stats.best_nops = result.schedule.total_nops();
  result.stats.seconds = wall.seconds();
  return result;
}

}  // namespace pipesched
