#include "sched/schedule.hpp"

#include <numeric>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace pipesched {

const char* curtail_reason_name(CurtailReason reason) {
  switch (reason) {
    case CurtailReason::None:
      return "none";
    case CurtailReason::Lambda:
      return "lambda";
    case CurtailReason::Deadline:
      return "deadline";
    case CurtailReason::Cancelled:
      return "cancelled";
  }
  return "?";
}

const char* portfolio_winner_name(PortfolioWinner winner) {
  switch (winner) {
    case PortfolioWinner::None:
      return "none";
    case PortfolioWinner::Bnb:
      return "bnb";
    case PortfolioWinner::Cp:
      return "cp";
  }
  return "?";
}

int Schedule::total_nops() const {
  return std::accumulate(nops.begin(), nops.end(), 0);
}

int Schedule::completion_cycle() const {
  return issue_cycle.empty() ? 0 : issue_cycle.back();
}

int Schedule::position_of(TupleIndex t) const {
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == t) return static_cast<int>(i) + 1;
  }
  return -1;
}

std::string Schedule::to_string(const BasicBlock& block,
                                const Machine& machine) const {
  PS_ASSERT(order.size() == nops.size() &&
            order.size() == issue_cycle.size() && order.size() == unit.size());
  std::ostringstream oss;
  int cycle = 1;
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (int k = 0; k < nops[i]; ++k) {
      oss << "cycle " << pad_left(std::to_string(cycle++), 3) << ": NOP\n";
    }
    const Tuple& t = block.tuple(order[i]);
    std::ostringstream line;
    line << (order[i] + 1) << ": " << opcode_name(t.op);
    oss << "cycle " << pad_left(std::to_string(cycle++), 3) << ": "
        << pad_right(line.str(), 16);
    if (unit[i] != kNoPipeline) {
      oss << " [" << machine.pipeline(unit[i]).function << " #"
          << unit[i] + 1 << "]";
    }
    oss << "\n";
  }
  oss << "total NOPs: " << total_nops() << "\n";
  return oss.str();
}

}  // namespace pipesched
