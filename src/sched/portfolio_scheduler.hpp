// Portfolio optimal backend: race branch-and-bound against CP per block.
//
// The two exact backends have complementary shapes — B&B enumerates
// permutations and excels when the incumbent prunes hard; CP probes
// makespans and excels when timing windows are tight — so the portfolio
// hedges enumeration blow-ups by running both on a two-worker thread pool
// and keeping the first finisher.
//
// Racing protocol:
//   * each racer gets its own std::atomic<bool> stop flag, wired through
//     SearchConfig::cancel (the same stop-flag discipline the parallel
//     B&B search uses internally);
//   * ONLY a racer that finished with stats.completed == true raises the
//     other's flag — a curtailed racer proves nothing, so its partner
//     keeps running within its own lambda/deadline budgets;
//   * the loser unwinds at its next budget check, records
//     CurtailReason::Cancelled, and wait_idle() drains both tasks — no
//     work is ever abandoned in the pool queue (the portfolio tests
//     assert this via the queue-depth gauge).
//
// Winner selection (deterministic given the racers' results):
//   * both completed: they must agree on feasibility and best_nops — any
//     disagreement is a soundness bug in one backend and fails loudly
//     (PS_CHECK) — and the first wall-clock finisher wins, which is the
//     only raceable outcome and is diagnostic only;
//   * exactly one completed: it wins (its result is proven optimal);
//   * neither completed: the better incumbent wins — feasible beats
//     infeasible, then fewer NOPs, with B&B breaking exact ties.
//
// The winner's result is returned verbatim except that
// stats.portfolio_winner records the backend and stats.seconds becomes
// the portfolio's wall clock; the loser's ledger is dropped. Wins are
// also counted in the metrics registry as ps_portfolio_wins{backend=...}.
//
// Curtailment budgets (curtail_lambda, deadline_seconds) propagate to
// BOTH racers unchanged, so a portfolio run never does more per-backend
// work than a standalone run. An outer SearchConfig::cancel is NOT
// forwarded to the racers (no caller cancels a portfolio run today);
// search_threads applies to the B&B racer only (CP is sequential).
#pragma once

#include "sched/scheduler.hpp"

namespace pipesched {

/// Race the two exact backends on one block (free-function form).
ScheduleResult portfolio_schedule(const Machine& machine, const DepGraph& dag,
                                  const SearchConfig& config = {},
                                  const PipelineState& initial = {});

class PortfolioScheduler final : public Scheduler {
 public:
  explicit PortfolioScheduler(const SearchConfig& config) : config_(config) {}

  const char* name() const override { return "portfolio"; }
  bool claims_optimality() const override { return true; }

  ScheduleResult run(const Machine& machine, const DepGraph& dag,
                     const PipelineState& initial = {}) const override {
    return portfolio_schedule(machine, dag, config_, initial);
  }

 private:
  SearchConfig config_;
};

}  // namespace pipesched
