#include "sched/timing.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pipesched {

namespace {

/// File-local alias for the sentinel declared on PipelineState.
constexpr int kUnitIdle = PipelineState::kUnitIdle;

}  // namespace

PipelineState PipelineState::drained(const Machine& machine) {
  PipelineState state;
  state.unit_last_issue.assign(machine.pipeline_count(), kUnitIdle);
  return state;
}

bool PipelineState::is_drained() const {
  // A unit still constrains the entering block when last + enqueue > 1.
  // Without a Machine at hand the enqueue time is unknown, so split the
  // range at kUnitIdle / 2: genuine residues are small negative cycle
  // numbers (a predecessor block's recent issues, clamped at kUnitIdle by
  // exit_state()), while only the idle sentinel's neighborhood lies at or
  // below half the sentinel — no valid enqueue time can bridge 500,000
  // cycles. The previous fixed -1000 cutoff misclassified residues in
  // (kUnitIdle, -1000] as drained for enqueue times above 1000 cycles.
  for (int last : unit_last_issue) {
    if (last > kUnitIdle / 2) return false;
  }
  return true;
}

PipelineTimer::PipelineTimer(const Machine& machine, const DepGraph& dag,
                             const PipelineState& initial)
    : machine_(&machine), dag_(&dag) {
  machine.validate();
  placements_.reserve(dag.size());
  position_of_.assign(dag.size(), -1);
  if (initial.unit_last_issue.empty()) {
    unit_last_issue_.assign(machine.pipeline_count(), kUnitIdle);
  } else {
    PS_CHECK(initial.unit_last_issue.size() == machine.pipeline_count(),
             "pipeline state does not match the machine's unit count");
    unit_last_issue_ = initial.unit_last_issue;
    for (int last : unit_last_issue_) {
      PS_CHECK(last <= 0,
               "initial unit occupancy must be at or before block entry "
               "(cycle 0), got "
                   << last);
    }
  }
}

int PipelineTimer::push(TupleIndex t) {
  return push(t,
              machine_->pipelines_for(dag_->block().tuple(t).op));
}

int PipelineTimer::push(TupleIndex t,
                        const std::vector<PipelineId>& units) {
  PS_ASSERT(t >= 0 && static_cast<std::size_t>(t) < dag_->size());
  PS_ASSERT(position_of_[static_cast<std::size_t>(t)] < 0);

  const int prev_cycle = last_issue_cycle();
  int required = prev_cycle + 1;

  // Dependence constraints (steps [5]-[6] of the paper's algorithm).
  for (TupleIndex p : dag_->preds(t)) {
    const int pos = position_of_[static_cast<std::size_t>(p)];
    PS_ASSERT(pos >= 0 && "predecessor not yet placed");
    const Placement& producer = placements_[static_cast<std::size_t>(pos)];
    const int latency =
        producer.unit == kNoPipeline
            ? 0
            : machine_->pipeline(producer.unit).latency;
    required = std::max(required, producer.issue_cycle + latency);
  }

  // Conflict constraint (step [3]): pick the earliest-free unit among the
  // given alternatives.
  PS_ASSERT(units.empty() ==
            machine_->pipelines_for(dag_->block().tuple(t).op).empty());
  PipelineId chosen = kNoPipeline;
  int issue = required;
  if (!units.empty()) {
    int best_avail = 0;
    for (PipelineId u : units) {
      // An idle unit (kUnitIdle, or residual state long past) clamps to
      // cycle 1.
      const int unit_ready =
          std::max(1, unit_last_issue_[static_cast<std::size_t>(u)] +
                          machine_->pipeline(u).enqueue);
      if (chosen == kNoPipeline || unit_ready < best_avail) {
        chosen = u;
        best_avail = unit_ready;
      }
    }
    issue = std::max(required, best_avail);
  }

  const int eta = issue - prev_cycle - 1;
  PS_ASSERT(eta >= 0);

  Placement placement;
  placement.tuple = t;
  placement.issue_cycle = issue;
  placement.eta = eta;
  placement.unit = chosen;
  placement.prev_unit_last_issue =
      chosen == kNoPipeline
          ? 0
          : unit_last_issue_[static_cast<std::size_t>(chosen)];
  if (chosen != kNoPipeline) {
    unit_last_issue_[static_cast<std::size_t>(chosen)] = issue;
  }
  position_of_[static_cast<std::size_t>(t)] =
      static_cast<int>(placements_.size());
  placements_.push_back(placement);
  total_nops_ += eta;
  return eta;
}

void PipelineTimer::pop() {
  PS_ASSERT(!placements_.empty());
  const Placement& placement = placements_.back();
  if (placement.unit != kNoPipeline) {
    unit_last_issue_[static_cast<std::size_t>(placement.unit)] =
        placement.prev_unit_last_issue;
  }
  position_of_[static_cast<std::size_t>(placement.tuple)] = -1;
  total_nops_ -= placement.eta;
  placements_.pop_back();
}

int PipelineTimer::last_issue_cycle() const {
  return placements_.empty() ? 0 : placements_.back().issue_cycle;
}

int PipelineTimer::issue_cycle_of(TupleIndex t) const {
  const int pos = position_of_[static_cast<std::size_t>(t)];
  PS_ASSERT(pos >= 0);
  return placements_[static_cast<std::size_t>(pos)].issue_cycle;
}

bool PipelineTimer::is_placed(TupleIndex t) const {
  PS_ASSERT(t >= 0 && static_cast<std::size_t>(t) < dag_->size());
  return position_of_[static_cast<std::size_t>(t)] >= 0;
}

Schedule PipelineTimer::snapshot() const {
  Schedule s;
  s.order.reserve(placements_.size());
  s.nops.reserve(placements_.size());
  s.issue_cycle.reserve(placements_.size());
  s.unit.reserve(placements_.size());
  for (const Placement& p : placements_) {
    s.order.push_back(p.tuple);
    s.nops.push_back(p.eta);
    s.issue_cycle.push_back(p.issue_cycle);
    s.unit.push_back(p.unit);
  }
  return s;
}

void PipelineTimer::clear() {
  while (!placements_.empty()) pop();
}

PipelineState PipelineTimer::exit_state() const {
  PipelineState state;
  const int exit_cycle = last_issue_cycle();
  state.unit_last_issue.reserve(unit_last_issue_.size());
  for (int last : unit_last_issue_) {
    state.unit_last_issue.push_back(
        std::max(kUnitIdle, last - exit_cycle));
  }
  return state;
}

Schedule evaluate_order(const Machine& machine, const DepGraph& dag,
                        const std::vector<TupleIndex>& order,
                        const PipelineState& initial) {
  PS_CHECK(dag.is_legal_order(order),
           "evaluate_order: not a legal topological order of the block");
  PipelineTimer timer(machine, dag, initial);
  for (TupleIndex t : order) timer.push(t);
  return timer.snapshot();
}

}  // namespace pipesched
