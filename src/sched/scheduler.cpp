#include "sched/scheduler.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "cache/result_cache.hpp"
#include "sched/cp_scheduler.hpp"
#include "sched/exhaustive_scheduler.hpp"
#include "sched/greedy_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/optimal_scheduler.hpp"
#include "sched/portfolio_scheduler.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/profiler.hpp"
#include "util/timer.hpp"

namespace pipesched {

const char* scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::Original:
      return "original";
    case SchedulerKind::List:
      return "list";
    case SchedulerKind::Greedy:
      return "greedy";
    case SchedulerKind::Optimal:
      return "optimal";
    case SchedulerKind::Exhaustive:
      return "exhaustive";
  }
  return "?";
}

const char* optimal_backend_name(OptimalBackend backend) {
  switch (backend) {
    case OptimalBackend::Bnb:
      return "bnb";
    case OptimalBackend::Cp:
      return "cp";
    case OptimalBackend::Portfolio:
      return "portfolio";
  }
  return "?";
}

bool parse_optimal_backend(const std::string& name, OptimalBackend* out) {
  if (name == "bnb") {
    *out = OptimalBackend::Bnb;
  } else if (name == "cp") {
    *out = OptimalBackend::Cp;
  } else if (name == "portfolio") {
    *out = OptimalBackend::Portfolio;
  } else {
    return false;
  }
  return true;
}

namespace {

/// SchedulerKind::Original — keep the front-end tuple order and let the
/// timing engine insert whatever NOPs it needs. The do-nothing baseline
/// every experiment's "before" column uses.
class OriginalOrderScheduler final : public Scheduler {
 public:
  const char* name() const override { return "original"; }

  ScheduleResult run(const Machine& machine, const DepGraph& dag,
                     const PipelineState& initial) const override {
    Timer wall;
    ScheduleResult result;
    std::vector<TupleIndex> order(dag.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<TupleIndex>(i);
    }
    result.schedule = evaluate_order(machine, dag, order, initial);
    result.stats.initial_nops = result.schedule.total_nops();
    result.stats.best_nops = result.stats.initial_nops;
    result.stats.seconds = wall.seconds();
    return result;
  }
};

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          const SearchConfig& config) {
  switch (kind) {
    case SchedulerKind::Original:
      return std::make_unique<OriginalOrderScheduler>();
    case SchedulerKind::List:
      return std::make_unique<ListScheduler>();
    case SchedulerKind::Greedy:
      return std::make_unique<GreedyScheduler>();
    case SchedulerKind::Optimal:
      switch (config.backend) {
        case OptimalBackend::Bnb:
          return std::make_unique<BnbScheduler>(config);
        case OptimalBackend::Cp:
          return std::make_unique<CpScheduler>(config);
        case OptimalBackend::Portfolio:
          return std::make_unique<PortfolioScheduler>(config);
      }
      PS_CHECK(false, "unknown optimal backend");
    case SchedulerKind::Exhaustive:
      return std::make_unique<ExhaustiveScheduler>();
  }
  PS_CHECK(false, "unknown scheduler kind");
}

ScheduleResult run_optimal_backend(const Machine& machine, const DepGraph& dag,
                                   const SearchConfig& config,
                                   const PipelineState& initial) {
  if (config.result_cache_path.empty()) {
    return make_scheduler(SchedulerKind::Optimal, config)
        ->run(machine, dag, initial);
  }

  // Persistent tier: consult the cross-run result cache before spending
  // any search effort. The canonical form captures everything the proven
  // optimum depends on; a verified hit short-circuits the whole search.
  Timer lookup_timer;
  const std::shared_ptr<ResultCache> cache =
      ResultCache::open_shared(config.result_cache_path);
  std::string canonical;
  CachedSchedule cached;
  bool hit = false;
  {
    // Canonicalization + the verified probe are the cache's whole cost on
    // a warm run; the profile shows whether they ever rival the search.
    PS_PROF_PHASE("result_cache_lookup");
    canonical = ResultCache::canonical_form(machine, dag, config, initial);
    hit = cache->lookup(canonical, &cached);
  }
  if (hit) {
    ScheduleResult result;
    result.schedule = std::move(cached.schedule);
    result.stats.completed = true;
    result.stats.feasible = true;
    result.stats.initial_nops = cached.initial_nops;
    result.stats.best_nops = cached.best_nops;
    result.stats.result_cache_hit = true;
    result.stats.seconds = lookup_timer.seconds();
    return result;
  }

  ScheduleResult result =
      make_scheduler(SchedulerKind::Optimal, config)->run(machine, dag, initial);
  // Only PROVEN results are memoized: a completed feasible search's
  // best_nops is the true optimum under any budget/backend/pruning
  // configuration, so the entry stays valid for every future query with
  // the same canonical form. Curtailed or infeasible results are never
  // stored.
  if (result.stats.completed && result.stats.feasible) {
    PS_PROF_PHASE("result_cache_store");
    CachedSchedule to_store;
    to_store.initial_nops = result.stats.initial_nops;
    to_store.best_nops = result.stats.best_nops;
    to_store.schedule = result.schedule;
    cache->store(canonical, to_store);
  }
  return result;
}

std::vector<int> equivalence_classes(const Machine& machine,
                                     const DepGraph& dag, bool strong,
                                     bool pressure_constrained) {
  const std::size_t n = dag.size();
  std::vector<int> cls(n, -1);
  int next = 1;

  // Paper rule: one shared class (id 0) for null instructions — no unit,
  // no predecessors, AND no dependents. All three are required for the
  // position-swap argument: a sigma-empty source with successors is not
  // interchangeable with its classmates (issuing it early is what lets
  // its consumer start early), and one with predecessors can stall on
  // producer latency where a classmate would not. The cross-solver
  // differential oracle caught the successor case as a missed optimum.
  // The rule is cost-sound but NOT pressure-sound (reordering null defs
  // shifts live ranges), so it is disabled under a register ceiling; the
  // strong automorphism classes below remain sound either way.
  if (!pressure_constrained) {
    for (std::size_t i = 0; i < n; ++i) {
      const Opcode op = dag.block().tuple(static_cast<TupleIndex>(i)).op;
      if (!machine.uses_pipeline(op) &&
          dag.preds(static_cast<TupleIndex>(i)).empty() &&
          dag.succs(static_cast<TupleIndex>(i)).empty()) {
        cls[i] = 0;
      }
    }
  }
  if (!strong) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cls[i] < 0) cls[i] = next++;
    }
    return cls;
  }

  // Strong classes for the rest: quadratic scan is fine at block sizes.
  std::vector<DynBitset> succ_sets(n, DynBitset(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (TupleIndex s : dag.succs(static_cast<TupleIndex>(i))) {
      succ_sets[i].set(static_cast<std::size_t>(s));
    }
  }
  // Under a register ceiling, classmates must additionally be
  // liveness-interchangeable: swapping their issue positions replays the
  // same live-set trajectory. Identical pred *sets* are not enough —
  // `Add 1, 1` consumes two remaining uses of tuple 1 where `Neg 1`
  // consumes one — so require the operand-ref multiset and result-ness
  // to match too. (Use counts of i and j agree automatically: with equal
  // succ sets every common successor references each exactly once.)
  const auto pressure_signature = [&](std::size_t i) {
    const Tuple& t = dag.block().tuple(static_cast<TupleIndex>(i));
    TupleIndex lo = t.a.is_ref() ? t.a.ref : -1;
    TupleIndex hi = t.b.is_ref() ? t.b.ref : -1;
    if (lo > hi) std::swap(lo, hi);
    return std::tuple<bool, TupleIndex, TupleIndex>(
        opcode_has_result(t.op), lo, hi);
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (cls[i] >= 0) continue;
    cls[i] = next;
    const auto& units_i = machine.pipelines_for(
        dag.block().tuple(static_cast<TupleIndex>(i)).op);
    for (std::size_t j = i + 1; j < n; ++j) {
      if (cls[j] >= 0) continue;
      const auto& units_j = machine.pipelines_for(
          dag.block().tuple(static_cast<TupleIndex>(j)).op);
      if (units_i == units_j &&
          dag.pred_set(static_cast<TupleIndex>(i)) ==
              dag.pred_set(static_cast<TupleIndex>(j)) &&
          succ_sets[i] == succ_sets[j] &&
          (!pressure_constrained ||
           pressure_signature(i) == pressure_signature(j))) {
        cls[j] = next;
      }
    }
    ++next;
  }
  return cls;
}

std::vector<int> latency_heights(const Machine& machine, const DepGraph& dag) {
  const std::size_t n = dag.size();
  std::vector<int> lh(n, 0);
  for (std::size_t ri = n; ri-- > 0;) {
    const auto index = static_cast<TupleIndex>(ri);
    const int step =
        std::max(1, machine.latency_for(dag.block().tuple(index).op));
    for (TupleIndex s : dag.succs(index)) {
      lh[ri] = std::max(lh[ri], step + lh[static_cast<std::size_t>(s)]);
    }
  }
  return lh;
}

void flush_search_metrics(const SearchStats& stats) {
  if (!metrics_enabled()) return;
  static Counter& runs = metrics_counter(
      "ps_search_runs_total", {}, "Optimal-backend searches completed");
  static Counter& nodes = metrics_counter(
      "ps_search_nodes_expanded_total", {}, "Search-tree nodes expanded");
  static Counter& omega = metrics_counter(
      "ps_search_omega_calls_total", {},
      "Incremental NOP-insertion (omega) invocations");
  static Counter& examined = metrics_counter(
      "ps_search_schedules_examined_total", {},
      "Complete schedules compared against the incumbent");
  static Counter& improved = metrics_counter(
      "ps_search_incumbent_improvements_total", {},
      "Times a complete schedule strictly beat the incumbent");
  static const char* kPrunesHelp =
      "Branches killed, by pruning rule (see optimal_scheduler.hpp)";
  static Counter& pruned_window = metrics_counter(
      "ps_search_pruned_total", {{"rule", "window"}}, kPrunesHelp);
  static Counter& pruned_readiness = metrics_counter(
      "ps_search_pruned_total", {{"rule", "readiness"}}, kPrunesHelp);
  static Counter& pruned_equivalence = metrics_counter(
      "ps_search_pruned_total", {{"rule", "equivalence"}}, kPrunesHelp);
  static Counter& pruned_alpha_beta = metrics_counter(
      "ps_search_pruned_total", {{"rule", "alpha_beta"}}, kPrunesHelp);
  static Counter& pruned_lower_bound = metrics_counter(
      "ps_search_pruned_total", {{"rule", "lower_bound"}}, kPrunesHelp);
  static Counter& pruned_dominance = metrics_counter(
      "ps_search_pruned_total", {{"rule", "dominance"}}, kPrunesHelp);
  static Counter& pruned_pressure = metrics_counter(
      "ps_search_pruned_total", {{"rule", "pressure"}}, kPrunesHelp);
  static const char* kCacheHelp =
      "Dominance/transposition cache traffic, by event";
  static Counter& cache_probes = metrics_counter(
      "ps_search_cache_events_total", {{"event", "probe"}}, kCacheHelp);
  static Counter& cache_hits = metrics_counter(
      "ps_search_cache_events_total", {{"event", "hit"}}, kCacheHelp);
  static Counter& cache_misses = metrics_counter(
      "ps_search_cache_events_total", {{"event", "miss"}}, kCacheHelp);
  static Counter& cache_evictions = metrics_counter(
      "ps_search_cache_events_total", {{"event", "evict"}}, kCacheHelp);
  static Counter& cache_superseded = metrics_counter(
      "ps_search_cache_events_total", {{"event", "supersede"}}, kCacheHelp);
  static Counter& cache_verified_rejects = metrics_counter(
      "ps_search_cache_events_total", {{"event", "verified_reject"}},
      kCacheHelp);
  static const char* kCurtailHelp =
      "Searches truncated before exhausting the space, by expired budget";
  static Counter& curtailed_lambda = metrics_counter(
      "ps_search_curtailed_total", {{"reason", "lambda"}}, kCurtailHelp);
  static Counter& curtailed_deadline = metrics_counter(
      "ps_search_curtailed_total", {{"reason", "deadline"}}, kCurtailHelp);
  static Counter& curtailed_cancelled = metrics_counter(
      "ps_search_curtailed_total", {{"reason", "cancelled"}}, kCurtailHelp);
  static LogHistogram& seconds = metrics_histogram(
      "ps_search_seconds", {}, "Wall-clock seconds per search");
  static LogHistogram& frontier = metrics_histogram(
      "ps_search_frontier_subtrees", {},
      "Disjoint root subtrees per parallel search (frontier split width)");

  runs.increment();
  if (stats.frontier_subtrees > 0) {
    frontier.observe(static_cast<double>(stats.frontier_subtrees));
  }
  nodes.add(stats.nodes_expanded);
  omega.add(stats.omega_calls);
  examined.add(stats.schedules_examined);
  improved.add(stats.incumbent_improvements);
  pruned_window.add(stats.pruned_window);
  pruned_readiness.add(stats.pruned_readiness);
  pruned_equivalence.add(stats.pruned_equivalence);
  pruned_alpha_beta.add(stats.pruned_alpha_beta);
  pruned_lower_bound.add(stats.pruned_lower_bound);
  pruned_dominance.add(stats.pruned_dominance);
  pruned_pressure.add(stats.pruned_pressure);
  cache_probes.add(stats.cache_probes);
  cache_hits.add(stats.cache_hits);
  cache_misses.add(stats.cache_misses);
  cache_evictions.add(stats.cache_evictions);
  cache_superseded.add(stats.cache_superseded);
  cache_verified_rejects.add(stats.cache_verified_rejects);
  if (stats.curtail_reason == CurtailReason::Lambda) {
    curtailed_lambda.increment();
  } else if (stats.curtail_reason == CurtailReason::Deadline) {
    curtailed_deadline.increment();
  } else if (stats.curtail_reason == CurtailReason::Cancelled) {
    curtailed_cancelled.increment();
  }
  seconds.observe(stats.seconds);
}

}  // namespace pipesched
