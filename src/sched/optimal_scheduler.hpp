// Optimality-preserving branch-and-bound schedule search — the paper's
// prime contribution (Section 4.2.3).
//
// The search walks partial schedules Phi depth-first, extending each by
// one ready instruction at a time through the incremental timing engine.
// Candidates at each depth are tried in seed-schedule order, so the first
// descent reproduces the list schedule and seeds the alpha-beta bound with
// a good incumbent. Pruning rules, each individually toggleable so the
// ablation bench can price them:
//
//   readiness  [5b]  only instructions whose predecessors are all placed;
//   window     [5a]  if some unscheduled instruction's latest legal
//                    position (Definition 7) *is* the slot being filled,
//                    it is the only candidate worth trying;
//   equivalence[5c]  at a given depth, at most one candidate per
//                    equivalence class is tried. The paper's literal rule
//                    classes together instructions with sigma = empty and
//                    rho = empty; the optional *strong* rule classes
//                    instructions with identical pipeline set, identical
//                    predecessor set and identical successor set (a DAG
//                    automorphism, so provably cost-preserving);
//   alpha-beta [6]   a partial schedule already costing >= the incumbent
//                    cannot improve (eta never decreases);
//   lower bound      (extension, off by default) latency-weighted critical
//                    path of the unscheduled suffix, admissible, prunes
//                    partials whose best possible completion cannot beat
//                    the incumbent;
//   dominance cache  (extension, on by default) transposition pruning: the
//                    canonical search state — set of placed instructions
//                    plus pipeline/producer timing residue relative to the
//                    current cycle — is Zobrist-hashed into a bounded
//                    cache; a branch reaching a cached state at equal-or-
//                    worse partial cost is dominated, because the earlier,
//                    cheaper visit admits exactly the same completions at
//                    the same incremental cost (soundness argument in
//                    DESIGN.md).
//
// On machines with heterogeneous alternative units (the general Section
// 4.1 model footnote 3 excludes) each candidate placement additionally
// branches over the opcode's unit-signature groups, so the unit choice is
// part of the optimized decision; homogeneous machines degenerate to a
// single pass and behave exactly as the paper's algorithm.
//
// The curtail point lambda (Section 2.3) bounds worst-case compile time:
// the search stops after lambda candidate placements (the paper's Lambda
// counter of step [4]) and reports the best schedule found so far, flagged
// possibly-suboptimal. Lambda counts machine-relative work; the optional
// wall-clock deadline (SearchConfig::deadline_seconds, an extension)
// bounds real time the same way — incumbent kept, completed=false — with
// SearchStats::curtail_reason distinguishing which budget expired.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sched/schedule.hpp"
#include "sched/timing.hpp"

namespace pipesched {

/// Parallel workers drain their local omega counts into the shared global
/// lambda ledger every this many calls, so the hot loop pays one atomic
/// add per interval instead of per call. Consequence: a parallel search
/// may overshoot curtail_lambda by at most threads x this interval
/// (sequential searches still curtail at exactly lambda).
inline constexpr std::uint64_t kParallelOmegaFlushInterval = 256;

struct SearchConfig {
  /// Maximum candidate placements (Lambda limit); 0 = search to exhaustion.
  std::uint64_t curtail_lambda = 1000;

  /// Wall-clock budget in seconds (0 = none). Lambda bounds *machine-
  /// relative* work; this bounds real time, which is what batch compile
  /// farms actually budget. Expiry curtails exactly like lambda — the
  /// incumbent is kept, completed=false — and SearchStats::curtail_reason
  /// records which budget fired. The clock (steady_clock) is sampled every
  /// ~1024 node expansions, so the hot loop stays branch-cheap and the
  /// effective deadline overshoots by at most one check interval.
  double deadline_seconds = 0;

  bool alpha_beta = true;             ///< rule [6]
  bool equivalence_prune = true;      ///< rule [5c], paper form
  bool strong_equivalence = false;    ///< automorphism classes (extension)
  bool window_prune = true;           ///< forced-position rule from [5a]
  bool lower_bound_prune = false;     ///< critical-path bound (extension)
  bool seed_with_list_schedule = true;  ///< step [1] seed; else original order

  /// State-dominance (transposition) cache: prune branches that reach an
  /// already-visited scheduler state at equal-or-worse partial cost.
  /// Cost-preserving (never prunes all optima) and compatible with every
  /// other rule, including the register-pressure ceiling — live counts
  /// are a function of the placed *set*, which is part of the state key.
  bool dominance_cache = true;

  /// Memory budget for the dominance cache, per search (16-byte entries;
  /// the table starts small and grows on demand up to this bound).
  std::size_t dominance_cache_bytes = 1u << 20;

  /// Worker threads for the search itself (1 = the classic sequential
  /// algorithm, bit-identical to previous releases; 0 = one per hardware
  /// thread). With N > 1 the search first expands a breadth-first frontier
  /// of at least N x 8 disjoint subtree roots, then explores the subtrees
  /// on a thread pool sharing (a) the incumbent — sound for alpha-beta
  /// because the bound only ever tightens, (b) a sharded dominance cache,
  /// and (c) the global lambda/deadline budgets. Exhaustive parallel runs
  /// return the same best_nops as sequential ones (the schedule attaining
  /// it may be a different optimum); curtailed runs may overshoot lambda
  /// by up to N x kParallelOmegaFlushInterval omega calls.
  std::size_t search_threads = 1;

  /// Register-pressure ceiling (0 = unconstrained). When set, the search
  /// only explores schedules whose simultaneously-live value count never
  /// exceeds this, implementing Section 3.1's discipline the other way
  /// round: instead of inserting spill code after the fact, the scheduler
  /// is barred from creating schedules the register file cannot hold, so
  /// allocation afterwards is guaranteed spill-free. The result is the
  /// optimal schedule *among the feasible ones*; stats.feasible reports
  /// whether any complete feasible schedule was found.
  int max_live_registers = 0;
};

struct OptimalResult {
  /// Best schedule found. When stats.feasible is false (pressure-
  /// constrained search with no feasible completion) this is the
  /// *infeasible* seed schedule, returned for diagnostics only —
  /// stats.best_nops is -1 in that case and callers must not treat the
  /// schedule as a usable result.
  Schedule best;

  /// Merged totals. For parallel runs every counter is the frontier pass
  /// plus all per-subtree worker ledgers summed (stats.frontier_subtrees
  /// says how many), completed is the conjunction, and feasible the
  /// disjunction — so downstream consumers (corpus roll-ups, metrics,
  /// reconciliation tests) treat parallel and sequential runs uniformly.
  SearchStats stats;

  /// Unmerged per-ledger stats of a parallel run, for tests and
  /// diagnostics: `frontier` covers the breadth-first split pass,
  /// `subtrees[i]` the worker exploration of the i-th subtree. Absent
  /// (nullopt) for sequential runs. Invariant: summing frontier and all
  /// subtree ledgers field-by-field reproduces `stats`.
  struct ParallelDetail {
    SearchStats frontier;
    std::vector<SearchStats> subtrees;
  };
  std::optional<ParallelDetail> parallel;
};

/// Run the branch-and-bound search on one block. `initial` carries
/// residual pipeline occupancy at block entry (paper footnote 1: adjacent
/// blocks are handled by modifying the initial conditions of the
/// analysis).
OptimalResult optimal_schedule(const Machine& machine, const DepGraph& dag,
                               const SearchConfig& config = {},
                               const PipelineState& initial = {});

}  // namespace pipesched
