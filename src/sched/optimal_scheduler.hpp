// Optimality-preserving branch-and-bound schedule search — the paper's
// prime contribution (Section 4.2.3).
//
// The search walks partial schedules Phi depth-first, extending each by
// one ready instruction at a time through the incremental timing engine.
// Candidates at each depth are tried in seed-schedule order, so the first
// descent reproduces the list schedule and seeds the alpha-beta bound with
// a good incumbent. Pruning rules, each individually toggleable so the
// ablation bench can price them:
//
//   readiness  [5b]  only instructions whose predecessors are all placed;
//   window     [5a]  if some unscheduled instruction's latest legal
//                    position (Definition 7) *is* the slot being filled,
//                    it is the only candidate worth trying;
//   equivalence[5c]  at a given depth, at most one candidate per
//                    equivalence class is tried. The paper's literal rule
//                    classes together instructions with sigma = empty and
//                    rho = empty; the optional *strong* rule classes
//                    instructions with identical pipeline set, identical
//                    predecessor set and identical successor set (a DAG
//                    automorphism, so provably cost-preserving);
//   alpha-beta [6]   a partial schedule already costing >= the incumbent
//                    cannot improve (eta never decreases);
//   lower bound      (extension, off by default) latency-weighted critical
//                    path of the unscheduled suffix, admissible, prunes
//                    partials whose best possible completion cannot beat
//                    the incumbent;
//   dominance cache  (extension, on by default) transposition pruning: the
//                    canonical search state — set of placed instructions
//                    plus pipeline/producer timing residue relative to the
//                    current cycle — is Zobrist-hashed into a bounded
//                    cache; a branch reaching a cached state at equal-or-
//                    worse partial cost is dominated, because the earlier,
//                    cheaper visit admits exactly the same completions at
//                    the same incremental cost (soundness argument in
//                    DESIGN.md).
//
// On machines with heterogeneous alternative units (the general Section
// 4.1 model footnote 3 excludes) each candidate placement additionally
// branches over the opcode's unit-signature groups, so the unit choice is
// part of the optimized decision; homogeneous machines degenerate to a
// single pass and behave exactly as the paper's algorithm.
//
// The curtail point lambda (Section 2.3) bounds worst-case compile time:
// the search stops after lambda candidate placements (the paper's Lambda
// counter of step [4]) and reports the best schedule found so far, flagged
// possibly-suboptimal. Lambda counts machine-relative work; the optional
// wall-clock deadline (SearchConfig::deadline_seconds, an extension)
// bounds real time the same way — incumbent kept, completed=false — with
// SearchStats::curtail_reason distinguishing which budget expired.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sched/schedule.hpp"
#include "sched/scheduler.hpp"
#include "sched/timing.hpp"

namespace pipesched {

/// Parallel workers drain their local omega counts into the shared global
/// lambda ledger every this many calls, so the hot loop pays one atomic
/// add per interval instead of per call. Consequence: a parallel search
/// may overshoot curtail_lambda by at most threads x this interval
/// (sequential searches still curtail at exactly lambda).
inline constexpr std::uint64_t kParallelOmegaFlushInterval = 256;

// SearchConfig lives in sched/scheduler.hpp (it is shared by every
// optimal backend, and SchedulerKind::Optimal dispatches on its
// `backend` field).

struct OptimalResult {
  /// Best schedule found. When stats.feasible is false (pressure-
  /// constrained search with no feasible completion) this is the
  /// *infeasible* seed schedule, returned for diagnostics only —
  /// stats.best_nops is -1 in that case and callers must not treat the
  /// schedule as a usable result.
  Schedule best;

  /// Merged totals. For parallel runs every counter is the frontier pass
  /// plus all per-subtree worker ledgers summed (stats.frontier_subtrees
  /// says how many), completed is the conjunction, and feasible the
  /// disjunction — so downstream consumers (corpus roll-ups, metrics,
  /// reconciliation tests) treat parallel and sequential runs uniformly.
  SearchStats stats;

  /// Unmerged per-ledger stats of a parallel run, for tests and
  /// diagnostics: `frontier` covers the breadth-first split pass,
  /// `subtrees[i]` the worker exploration of the i-th subtree. Absent
  /// (nullopt) for sequential runs. Invariant: summing frontier and all
  /// subtree ledgers field-by-field reproduces `stats`.
  struct ParallelDetail {
    SearchStats frontier;
    std::vector<SearchStats> subtrees;
  };
  std::optional<ParallelDetail> parallel;
};

/// Run the branch-and-bound search on one block. `initial` carries
/// residual pipeline occupancy at block entry (paper footnote 1: adjacent
/// blocks are handled by modifying the initial conditions of the
/// analysis).
OptimalResult optimal_schedule(const Machine& machine, const DepGraph& dag,
                               const SearchConfig& config = {},
                               const PipelineState& initial = {});

/// Scheduler-interface wrapper over optimal_schedule() (the B&B backend
/// of SchedulerKind::Optimal; the parallel-detail ledger is dropped).
class BnbScheduler final : public Scheduler {
 public:
  explicit BnbScheduler(const SearchConfig& config) : config_(config) {}

  const char* name() const override { return "bnb"; }
  bool claims_optimality() const override { return true; }

  ScheduleResult run(const Machine& machine, const DepGraph& dag,
                     const PipelineState& initial = {}) const override {
    OptimalResult result = optimal_schedule(machine, dag, config_, initial);
    return {std::move(result.best), result.stats};
  }

 private:
  SearchConfig config_;
};

}  // namespace pipesched
