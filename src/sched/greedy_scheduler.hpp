// Machine-aware greedy scheduler in the style of Gross [Gro83] /
// Abraham et al. [AbP88] — the heuristic-baseline family the paper's
// optimal search is compared against.
//
// At every step it issues the ready instruction that needs the fewest NOPs
// right now (probed through the incremental timer), breaking ties by DAG
// height then original index. Fast and usually good, but — unlike the
// branch-and-bound scheduler — it can commit to locally-cheap placements
// that force delays later, which is exactly the gap the benchmarks
// quantify.
#pragma once

#include "sched/schedule.hpp"
#include "sched/scheduler.hpp"
#include "sched/timing.hpp"

namespace pipesched {

/// Greedy schedule of the block on `machine`. `initial` carries residual
/// pipeline occupancy at block entry.
Schedule greedy_schedule(const Machine& machine, const DepGraph& dag,
                         const PipelineState& initial = {});

/// Scheduler-interface wrapper. Heuristic one-shot policy: the stats
/// ledger reports its single schedule as both initial and best, with
/// every search counter at its explicit default.
class GreedyScheduler final : public Scheduler {
 public:
  const char* name() const override { return "greedy"; }
  ScheduleResult run(const Machine& machine, const DepGraph& dag,
                     const PipelineState& initial = {}) const override;
};

}  // namespace pipesched
