#include "sched/portfolio_scheduler.hpp"

#include <atomic>
#include <exception>
#include <utility>

#include "sched/cp_scheduler.hpp"
#include "sched/optimal_scheduler.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"
#include "util/profiler.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace pipesched {

namespace {

void count_portfolio_win(PortfolioWinner winner) {
  if (!metrics_enabled()) return;
  static const char* kHelp = "Portfolio races decided, by winning backend";
  static Counter& bnb =
      metrics_counter("ps_portfolio_wins", {{"backend", "bnb"}}, kHelp);
  static Counter& cp =
      metrics_counter("ps_portfolio_wins", {{"backend", "cp"}}, kHelp);
  (winner == PortfolioWinner::Bnb ? bnb : cp).increment();
}

}  // namespace

ScheduleResult portfolio_schedule(const Machine& machine, const DepGraph& dag,
                                  const SearchConfig& config,
                                  const PipelineState& initial) {
  Timer wall;
  std::atomic<bool> cancel[2] = {{false}, {false}};  // [0]=bnb, [1]=cp
  std::atomic<int> finish_counter{0};
  int finish_rank[2] = {0, 0};  // each written once, by its own racer
  ScheduleResult results[2];
  std::exception_ptr errors[2] = {nullptr, nullptr};

  {
    ThreadPool pool(2, "portfolio-");
    pool.submit([&] {
      try {
        // The racer's own samples land under "portfolio;bnb;...": the
        // profile separates race overhead from the backends' search work.
        PS_PROF_PHASE("portfolio");
        SearchConfig cfg = config;
        cfg.backend = OptimalBackend::Bnb;
        cfg.cancel = &cancel[0];
        OptimalResult r = optimal_schedule(machine, dag, cfg, initial);
        results[0] = {std::move(r.best), r.stats};
      } catch (...) {
        errors[0] = std::current_exception();
      }
      finish_rank[0] = 1 + finish_counter.fetch_add(1);
      if (results[0].stats.completed && !errors[0]) {
        cancel[1].store(true, std::memory_order_relaxed);
      }
    });
    pool.submit([&] {
      try {
        PS_PROF_PHASE("portfolio");
        SearchConfig cfg = config;
        cfg.backend = OptimalBackend::Cp;
        cfg.cancel = &cancel[1];
        results[1] = cp_schedule(machine, dag, cfg, initial);
      } catch (...) {
        errors[1] = std::current_exception();
      }
      finish_rank[1] = 1 + finish_counter.fetch_add(1);
      if (results[1].stats.completed && !errors[1]) {
        cancel[0].store(true, std::memory_order_relaxed);
      }
    });
    pool.wait_idle();
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  const SearchStats& bnb = results[0].stats;
  const SearchStats& cp = results[1].stats;
  int winner;
  if (bnb.completed && cp.completed) {
    // Both proved their answer: any disagreement is a soundness bug in
    // one of the two independent solvers. Fail loudly; the corpus runner
    // surfaces this as a per-block error.
    PS_CHECK(bnb.feasible == cp.feasible,
             "optimal backends disagree on feasibility");
    PS_CHECK(bnb.best_nops == cp.best_nops,
             "optimal backends disagree on the optimum");
    winner = finish_rank[0] <= finish_rank[1] ? 0 : 1;
  } else if (bnb.completed != cp.completed) {
    winner = bnb.completed ? 0 : 1;
  } else {
    // Neither finished: keep the better incumbent, B&B on exact ties.
    if (bnb.feasible != cp.feasible) {
      winner = bnb.feasible ? 0 : 1;
    } else if (bnb.feasible && cp.best_nops < bnb.best_nops) {
      winner = 1;
    } else {
      winner = 0;
    }
  }

  ScheduleResult out = std::move(results[winner]);
  out.stats.portfolio_winner =
      winner == 0 ? PortfolioWinner::Bnb : PortfolioWinner::Cp;
  out.stats.seconds = wall.seconds();
  count_portfolio_win(out.stats.portfolio_winner);
  return out;
}

}  // namespace pipesched
