// Incremental NOP-insertion engine — the paper's algorithm Omega
// (Section 4.2.2), reformulated over issue cycles.
//
// For the i-th placed instruction zeta the required issue cycle is
//
//   t(i) = max( t(i-1) + 1,                                  // one per slot
//               max_{delta in rho(zeta)} t(delta) + latency(sigma(delta)),
//               avail(u) )                                   // conflict
//
// where avail(u) = last issue on unit u + enqueue(u), minimized over the
// unit candidates for zeta (earliest-free-unit assignment: optimal for a
// fixed order when the candidates share one (latency, enqueue) signature;
// the optimal search passes one signature group at a time and branches
// over groups for heterogeneous alternatives). Then
// eta(i) = t(i) - t(i-1) - 1, and
// mu = t(n) - n: NOP counting and issue timing are the same computation.
//
// Operations with sigma = empty (Const, Store on the paper machine) have
// latency 0 and never conflict, exactly as steps [2] and [4] of the paper
// skip them.
//
// The engine is a stack: push() appends one instruction and returns its
// eta; pop() undoes the most recent push in O(1). The branch-and-bound
// search keeps one PipelineTimer and pushes/pops along its DFS walk, which
// is what makes each search node O(preds) instead of O(n).
#pragma once

#include <vector>

#include "ir/dag.hpp"
#include "machine/machine.hpp"
#include "sched/schedule.hpp"

namespace pipesched {

/// Residual pipeline occupancy at a block boundary (the paper's footnote 1:
/// "interactions between adjacent blocks can be managed ... by modifying
/// the initial conditions in the analysis for each block").
///
/// unit_last_issue[u] is the cycle, in the NEW block's timeline, at which
/// unit u last accepted an operation; block entry is cycle 0, so values
/// are <= 0 (e.g. -1 = the predecessor enqueued something on u two cycles
/// before our first slot). An empty vector means fully drained pipelines.
struct PipelineState {
  /// "Never issued" sentinel: far enough in the past that
  /// last + enqueue <= 1 for any enqueue time a machine description can
  /// validly carry (enqueue >= 1 and in practice a few cycles; anything
  /// approaching |kUnitIdle|/2 is unrepresentable residue, not a machine).
  static constexpr int kUnitIdle = -1'000'000;

  std::vector<int> unit_last_issue;

  /// Drained state (every unit idle) for `machine`.
  static PipelineState drained(const Machine& machine);

  /// True when no unit still constrains the entering block. The threshold
  /// derives from kUnitIdle (see is_drained's definition): a unit counts
  /// as drained only when its residue is in the sentinel's neighborhood,
  /// not merely "very negative" — a residual issue at, say, cycle -5000
  /// still constrains a unit whose enqueue time exceeds 5000 cycles.
  bool is_drained() const;
};

class PipelineTimer {
 public:
  PipelineTimer(const Machine& machine, const DepGraph& dag,
                const PipelineState& initial = {});

  /// Append tuple `t` as the next scheduled instruction, choosing the
  /// earliest-free unit among ALL of its opcode's alternatives (optimal
  /// for homogeneous alternatives; a heuristic for heterogeneous ones).
  /// Every DAG predecessor of `t` must already be placed (checked).
  /// Returns eta, the NOPs required immediately before it.
  int push(TupleIndex t);

  /// Append `t` restricted to the given unit candidates (one signature
  /// group; the optimal search branches over groups for heterogeneous
  /// alternatives). `units` must be a non-empty subset of the opcode's
  /// mapped pipelines.
  int push(TupleIndex t, const std::vector<PipelineId>& units);

  /// Undo the most recent push.
  void pop();

  /// Number of instructions currently placed.
  std::size_t depth() const { return placements_.size(); }

  /// mu(Phi): total NOPs of the current partial schedule.
  int total_nops() const { return total_nops_; }

  /// Issue cycle of the most recently placed instruction (0 when empty).
  int last_issue_cycle() const;

  /// Issue cycle of placed tuple `t` (must be placed).
  int issue_cycle_of(TupleIndex t) const;

  /// True when tuple `t` is currently placed.
  bool is_placed(TupleIndex t) const;

  /// Snapshot the current (complete or partial) schedule.
  Schedule snapshot() const;

  /// Residual occupancy seen by a block that starts right after the
  /// current last issue (for chaining across a fall-through edge).
  PipelineState exit_state() const;

  /// Reset to the empty schedule (initial conditions are kept).
  void clear();

  const Machine& machine() const { return *machine_; }
  const DepGraph& dag() const { return *dag_; }

  struct Placement {
    TupleIndex tuple;
    int issue_cycle;
    int eta;
    PipelineId unit;          // kNoPipeline when sigma = empty
    int prev_unit_last_issue; // saved for pop()
  };

  /// Placed instructions in issue order (read-only view for the search's
  /// state hashing: recent placements carry the pending-latency residue).
  const std::vector<Placement>& placements() const { return placements_; }

  /// Cycle at which unit `u` last accepted an operation (very negative
  /// when never used; see PipelineState).
  int unit_last_issue(PipelineId u) const {
    return unit_last_issue_[static_cast<std::size_t>(u)];
  }

 private:
  const Machine* machine_;
  const DepGraph* dag_;
  std::vector<Placement> placements_;
  std::vector<int> position_of_;       // tuple -> stack index, -1 if absent
  std::vector<int> unit_last_issue_;   // per pipeline unit, 0 = never used
  int total_nops_ = 0;
};

/// Evaluate a complete order from scratch: the O(n) procedure "Q" of
/// Section 2.3. Throws Error if `order` is not a legal topological order.
Schedule evaluate_order(const Machine& machine, const DepGraph& dag,
                        const std::vector<TupleIndex>& order,
                        const PipelineState& initial = {});

}  // namespace pipesched
