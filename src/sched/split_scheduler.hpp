// Block-splitting scheduler (paper Section 5.3):
//
//   "For very large basic blocks, it might be useful to split the basic
//    blocks into smaller sections (containing, say, twenty instructions or
//    less each) and find solutions which are locally optimal. A good
//    heuristic for the split might be to simply partition the list
//    schedule."
//
// Exactly that: the list schedule is cut into windows of `window_size`
// instructions; each window is branch-and-bound searched to a locally
// optimal order *given everything already scheduled* (the shared
// incremental timer carries issue times and unit occupancy across the
// cut), then frozen. Window k's instructions can only depend on windows
// <= k because the list order is topological, so any within-window
// reordering stays globally legal.
//
// Guarantees: the result never needs more NOPs than the plain list
// schedule (each window's search starts from the list order as incumbent),
// and equals the global optimum whenever window_size >= block size.
#pragma once

#include "sched/optimal_scheduler.hpp"
#include "sched/schedule.hpp"

namespace pipesched {

struct SplitConfig {
  int window_size = 20;
  /// Per-window search limit; total work is bounded by windows * lambda.
  SearchConfig search;
};

struct SplitResult {
  Schedule schedule;
  SearchStats stats;  ///< omega calls summed over windows
  int windows = 0;
};

SplitResult split_schedule(const Machine& machine, const DepGraph& dag,
                           const SplitConfig& config = {});

}  // namespace pipesched
