// Exhaustive schedule search (paper Section 2.3).
//
// Enumerates every legal topological order of the block, evaluates each
// with the timing engine, and keeps the cheapest. Exponential — usable as
// ground truth for blocks up to a dozen instructions — and the source of
// Table 1's "Pruning Illegal Calls" column (number of legal schedules,
// i.e. the search size after pruning only dependence-violating orders).
#pragma once

#include <cstdint>
#include <optional>

#include "sched/schedule.hpp"
#include "sched/scheduler.hpp"
#include "sched/timing.hpp"

namespace pipesched {

struct ExhaustiveResult {
  Schedule best;
  std::uint64_t schedules_examined = 0;  ///< complete legal orders evaluated
  bool completed = true;                 ///< false if the cap stopped us
};

/// Search every legal order, evaluating at most `max_schedules` complete
/// schedules (0 = unlimited; beware factorial growth).
ExhaustiveResult exhaustive_schedule(const Machine& machine,
                                     const DepGraph& dag,
                                     std::uint64_t max_schedules = 0);

/// Scheduler-interface wrapper. Ground-truth oracle; claims optimality
/// when the enumeration ran to completion. The stats ledger maps
/// evaluated orders onto both schedules_examined and omega_calls (one
/// full timing evaluation each). `initial` is ignored, as it always has
/// been for this kind: the oracle evaluates drained-entry blocks only.
class ExhaustiveScheduler final : public Scheduler {
 public:
  const char* name() const override { return "exhaustive"; }
  bool claims_optimality() const override { return true; }
  ScheduleResult run(const Machine& machine, const DepGraph& dag,
                     const PipelineState& initial = {}) const override;
};

}  // namespace pipesched
