// Common scheduler interface (the pasched-style `Scheduler` base).
//
// Every scheduling policy in src/sched/ — original order, list, greedy,
// exhaustive, and the three optimal backends (branch-and-bound, CP/DP,
// and the portfolio racer) — implements one virtual entry point:
//
//   ScheduleResult run(machine, dag, initial)
//
// returning the schedule plus a fully-defaulted SearchStats ledger, so
// drivers (compiler, corpus runner, psc, benches) treat every policy
// uniformly and never read half-filled backend-specific fields.
//
// The two *optimal* backends are independent implementations of the same
// specification (minimum-NOP schedule under the Section 4.2.2 timing
// rules). Both claim optimality whenever stats.completed is true, so any
// disagreement between them on best_nops is a soundness bug in one of the
// two — the cross-solver differential suite (tests/test_cp_differential)
// leans on exactly this property.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "sched/schedule.hpp"
#include "sched/timing.hpp"

namespace pipesched {

enum class SchedulerKind {
  Original,    ///< keep front-end order (NOPs inserted, no reordering)
  List,        ///< machine-independent list heuristic (Section 3.2)
  Greedy,      ///< Gross-style machine-aware heuristic baseline
  Optimal,     ///< optimal search (backend selected by SearchConfig)
  Exhaustive,  ///< all legal orders (ground truth; small blocks only)
};

const char* scheduler_kind_name(SchedulerKind kind);

/// Which optimal-search implementation SchedulerKind::Optimal runs.
enum class OptimalBackend {
  Bnb,        ///< branch-and-bound over schedule prefixes (Section 4.2.3)
  Cp,         ///< CP/DP over (cycle, issue-slot) assignments
  Portfolio,  ///< race Bnb against Cp per block; first finisher wins
};

const char* optimal_backend_name(OptimalBackend backend);

/// Parse "bnb" | "cp" | "portfolio"; returns false on unknown names.
bool parse_optimal_backend(const std::string& name, OptimalBackend* out);

struct SearchConfig {
  /// Maximum candidate placements (Lambda limit); 0 = search to exhaustion.
  std::uint64_t curtail_lambda = 1000;

  /// Wall-clock budget in seconds (0 = none). Lambda bounds *machine-
  /// relative* work; this bounds real time, which is what batch compile
  /// farms actually budget. Expiry curtails exactly like lambda — the
  /// incumbent is kept, completed=false — and SearchStats::curtail_reason
  /// records which budget fired. The clock (steady_clock) is sampled every
  /// ~1024 node expansions, so the hot loop stays branch-cheap and the
  /// effective deadline overshoots by at most one check interval.
  double deadline_seconds = 0;

  /// Optimal-search implementation (see OptimalBackend). Both backends
  /// are exact; Portfolio races them and keeps the first finisher.
  OptimalBackend backend = OptimalBackend::Bnb;

  /// Cooperative cancellation (not owned; may be null). When the pointee
  /// becomes true the search unwinds at its next budget check and reports
  /// CurtailReason::Cancelled. This is how the portfolio stops the losing
  /// racer: same stop-flag discipline the parallel search uses
  /// internally, surfaced as a config knob.
  const std::atomic<bool>* cancel = nullptr;

  bool alpha_beta = true;             ///< rule [6]
  bool equivalence_prune = true;      ///< rule [5c], paper form
  bool strong_equivalence = false;    ///< automorphism classes (extension)
  bool window_prune = true;           ///< forced-position rule from [5a]
  bool lower_bound_prune = false;     ///< critical-path bound (extension)
  bool seed_with_list_schedule = true;  ///< step [1] seed; else original order

  /// State-dominance (transposition) cache: prune branches that reach an
  /// already-visited scheduler state at equal-or-worse partial cost.
  /// Cost-preserving (never prunes all optima) and compatible with every
  /// other rule, including the register-pressure ceiling — live counts
  /// are a function of the placed *set*, which is part of the state key.
  bool dominance_cache = true;

  /// Memory budget for the dominance cache, per search (24-byte entries —
  /// key, verification word, cost, depth; the table starts small and
  /// grows on demand up to this bound). 1.5 MiB keeps the historical
  /// 65,536-entry table now that the verification word widened entries
  /// from 16 to 24 bytes.
  std::size_t dominance_cache_bytes = 3u << 19;

  /// Worker threads for the B&B search itself (1 = the classic sequential
  /// algorithm, bit-identical to previous releases; 0 = one per hardware
  /// thread). With N > 1 the search first expands a breadth-first frontier
  /// of at least N x 8 disjoint subtree roots, then explores the subtrees
  /// on a thread pool sharing (a) the incumbent — sound for alpha-beta
  /// because the bound only ever tightens, (b) a sharded dominance cache,
  /// and (c) the global lambda/deadline budgets. Exhaustive parallel runs
  /// return the same best_nops as sequential ones (the schedule attaining
  /// it may be a different optimum); curtailed runs may overshoot lambda
  /// by up to N x kParallelOmegaFlushInterval omega calls.
  std::size_t search_threads = 1;

  /// Register-pressure ceiling (0 = unconstrained). When set, the search
  /// only explores schedules whose simultaneously-live value count never
  /// exceeds this, implementing Section 3.1's discipline the other way
  /// round: instead of inserting spill code after the fact, the scheduler
  /// is barred from creating schedules the register file cannot hold, so
  /// allocation afterwards is guaranteed spill-free. The result is the
  /// optimal schedule *among the feasible ones*; stats.feasible reports
  /// whether any complete feasible schedule was found.
  int max_live_registers = 0;

  /// Persistent cross-run result cache (empty = disabled). When set,
  /// run_optimal_backend consults the append-log cache at this path
  /// before dispatching a backend and memoizes proven-optimal results
  /// after. Lookups are verified byte-for-byte against the canonical
  /// query (see cache/result_cache.hpp), so a stale or colliding entry
  /// degrades to a miss, never a wrong schedule. Exposed as
  /// `psc --result-cache <path>` and the PS_RESULT_CACHE env knob of the
  /// benches.
  std::string result_cache_path;
};

/// What every Scheduler::run returns: the schedule plus a fully-populated
/// stats ledger (backends default the fields they do not track — see the
/// SearchStats field docs for which counters are backend-shaped).
struct ScheduleResult {
  Schedule schedule;
  SearchStats stats;
};

/// Abstract scheduling policy. Implementations are stateless with respect
/// to the block (config is bound at construction), so one instance may
/// schedule many blocks and may be shared across threads.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Short policy name for stats/metrics labels ("list", "bnb", "cp", ...).
  virtual const char* name() const = 0;

  /// True when the policy proves optimality on completed runs (the two
  /// exact backends and the portfolio of them; the exhaustive oracle).
  virtual bool claims_optimality() const { return false; }

  /// Schedule one block. `initial` carries residual pipeline occupancy at
  /// block entry (paper footnote 1).
  virtual ScheduleResult run(const Machine& machine, const DepGraph& dag,
                             const PipelineState& initial = {}) const = 0;
};

/// Factory over every SchedulerKind. SchedulerKind::Optimal dispatches on
/// config.backend (Bnb | Cp | Portfolio).
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          const SearchConfig& config = {});

/// Run the optimal backend selected by config.backend on one block —
/// convenience for drivers that only ever run the optimal policy (corpus
/// runner, register-limited compilation).
ScheduleResult run_optimal_backend(const Machine& machine, const DepGraph& dag,
                                   const SearchConfig& config = {},
                                   const PipelineState& initial = {});

// ---- Shared search internals (used by the backends; exposed here so the
// ---- two independent solvers provably agree on these definitions) -------

/// Partition tuples into equivalence classes for prune [5c].
/// Paper rule: every null instruction — sigma-empty, rho-empty, AND
/// dependent-free — shares one class (such instructions are fully
/// timing-transparent, so their relative order is immaterial; any weaker
/// condition breaks the position-swap argument in this timing model). Strong rule (extension): additionally, instructions with
/// identical (pipeline set, predecessor set, immediate successor set) are
/// DAG automorphisms of one another and share a class — this *subsumes*
/// the paper rule's class rather than replacing it. The paper rule is
/// cost-sound but NOT pressure-sound, so it is disabled when
/// `pressure_constrained`. Strong classes are cost-sound as-is; under
/// `pressure_constrained` they are refined by operand-ref multiset and
/// result-ness so classmates are also liveness-interchangeable, keeping
/// the skip sound under a register ceiling.
std::vector<int> equivalence_classes(const Machine& machine,
                                     const DepGraph& dag, bool strong,
                                     bool pressure_constrained);

/// Latency-weighted height below each tuple: a chain from t's issue to the
/// final instruction's issue needs at least lh(t) further cycles, because
/// each dependence edge forces max(1, latency(producer)) cycles between
/// issues. Admissible (uses the minimum latency over unit alternatives).
std::vector<int> latency_heights(const Machine& machine, const DepGraph& dag);

/// Publish one finished search's SearchStats into the metrics registry.
/// The hot loops keep mutating plain local counters (zero added cost per
/// node); the registry receives the totals in one batch here, so registry
/// sums are exactly the sums of the per-search stats — a property the
/// test suite asserts. Shared by every optimal backend.
void flush_search_metrics(const SearchStats& stats);

}  // namespace pipesched
