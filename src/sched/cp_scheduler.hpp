// CP/DP optimal backend — chronological constraint search over
// (cycle, issue-slot) assignments. The second, independent implementation
// of the optimal-scheduling specification (minimum-NOP schedule under the
// Section 4.2.2 timing rules), built as a differential oracle against the
// branch-and-bound backend: both claim optimality whenever
// stats.completed is true, so any disagreement on best_nops between the
// two is a soundness bug in one of them.
//
// Model. Instead of enumerating permutations (B&B), the solver probes
// makespans: "does a schedule finishing by cycle T exist?". Feasibility
// is monotone in T (any schedule pads upward), so the loop DESCENDS from
// one below the seed's makespan: each successful probe is a
// first-completion dive whose cost k jumps the next horizon straight to
// n + k - 1 ("beat it by one NOP"), and the first infeasible probe —
// ONE exhaustive refutation, one cycle below the optimum — certifies
// optimality for every lower horizon at once. A completion meeting the
// critical-path/positional lower bound exits with no refutation at all.
//
// Each probe is a chronological DFS over cycles: at cycle c either one
// ready instruction issues on one of its unit-signature groups, or the
// probe idles FORWARD TO THE NEXT EVENT (NOPs drawn from the budget
// B = T - n). Constraint propagation per node:
//
//   windows    earliest/latest cycles. est0(t) folds Definition 6
//              (|ancestors|+1), latency-weighted chains from above, and
//              first unit availability under the entry PipelineState; at
//              each node the pass re-propagates earliest starts through
//              placed predecessors' actual (cycle, latency) in one
//              topological sweep. tail(t) = max(latency height below t,
//              |descendants|), so t must issue by lst(t) = T - tail(t).
//              Any unplaced t with est(t) > lst(t) kills the node;
//              lst(t) == c forces t into cycle c (two distinct forced
//              tuples kill the node).
//   resources  exact unit bookkeeping: a signature group is issuable at c
//              iff some unit u in it has last_issue(u) + enqueue(u) <= c.
//              Within a group the concrete unit is immaterial (leftover
//              availability <= c never constrains later cycles), so the
//              solver takes the first free unit — the same exchange
//              argument behind the timing engine's earliest-free rule.
//              Capacity propagation on top: the k unplaced ops bound to
//              a single unit issue there at enqueue-interval spacing, so
//              max(c, avail(u)) + (k-1)*enqueue(u) must not overshoot
//              the loosest of their windows.
//   NOP rule   an idle cycle is dominated — and the idle branch skipped —
//              when no forced tuple exists and every ready,
//              pressure-admissible candidate could issue *now* with ALL
//              of its units free: whichever instruction a completion
//              issues first after the idle gap can be moved onto cycle c
//              on its own unit without disturbing anything else. The
//              all-units-free condition is required: with only some
//              units free the completion may use a busy unit whose
//              enqueue residue reaches past c. When idling is not
//              dominated it is branched as ONE JUMP to the next event —
//              the earliest cycle at which a currently blocked
//              (candidate, group) placement becomes legal. Nothing new
//              becomes issuable strictly before the event, so a
//              completion first-issuing in between issues something
//              already issuable at c, which the exchange above moves
//              onto c: per-cycle idle branching would only re-derive
//              dominated states.
//   symmetry   strong automorphism classes only (identical pipeline set,
//              predecessor set, successor set): at most one candidate
//              per class is tried per node. The paper's sigma/rho-empty
//              class-0 rule is NOT applied — it is sound for B&B's
//              position-indexed nodes but not obviously so for
//              fixed-cycle nodes. The classes come pressure-refined
//              (operand-ref multiset + result-ness), so the skip stays
//              sound — and enabled — under a register-pressure ceiling.
//
// Each probe also memoizes exhaustively-failed DP states — per-tuple
// latency residues plus per-unit enqueue residues, all relative to the
// current cycle — so permuted prefixes that issue the same tuple set
// into the same residue picture share one subtree. The cycle itself is
// NOT part of the key: constraints below a node are translation-
// invariant given the residues, so a completion from a later cycle
// shifts left onto an earlier one, and a state that failed at cycle c
// fails at every cycle >= c — the memo stores the minimum failed cycle
// per state. The memo is probe-local (feasibility is horizon-dependent)
// and budgeted by dominance_cache_bytes.
//
// Under a register ceiling whose list seed overshoots, feasibility —
// a property of the instruction order alone, independent of timing —
// is decided once up front by a pure order search with a failed
// placed-set memo; an admissible order replaces the seed, and a proven
// failure reports infeasible without probing any horizon.
//
// Config. CurtailReason budgets (curtail_lambda over cumulative
// placement attempts + NOP advances across probes, deadline_seconds,
// cancel) and max_live_registers are honored; seed_with_list_schedule
// picks the incumbent returned on curtailment; dominance_cache /
// dominance_cache_bytes gate and size the DP failed-state memo. The
// remaining B&B prune toggles (alpha_beta, equivalence_prune,
// strong_equivalence, window_prune, lower_bound_prune) and
// search_threads are ignored — the CP propagation rules are always on
// and the solver is sequential.
//
// Stats mapping (satellite of the backend-shape audit: every SearchStats
// field is explicitly defined for this backend):
//   omega_calls            placement attempts + idle jumps (all probes)
//   nodes_expanded         DFS nodes across all probes
//   schedules_examined     completions found (one per successful probe)
//   pruned_window          window kills (est > lst), capacity-propagation
//                          kills, forced-slot displacements, forced-slot
//                          and past-horizon idle suppressions
//   pruned_alpha_beta      idle jumps denied by the budget B = T - n
//   pruned_readiness       unready / too-early / unit-busy candidate skips
//   pruned_equivalence     strong-class skips
//   pruned_pressure        register-ceiling skips
//   pruned_dominance       DP failed-state memo hits
//   cache_probes/hits      DP memo lookups / hits (== pruned_dominance)
//   pruned_lower_bound, frontier_subtrees                              0
//   initial_nops           seed (list or pressure-repaired) schedule cost
//   incumbent_improvements successful probes (each beats the last by >= 1)
//   completed/curtail_reason/feasible/best_nops    as for the B&B backend
#pragma once

#include "sched/scheduler.hpp"

namespace pipesched {

/// Run the CP/DP search on one block (free-function form mirroring
/// optimal_schedule()).
ScheduleResult cp_schedule(const Machine& machine, const DepGraph& dag,
                           const SearchConfig& config = {},
                           const PipelineState& initial = {});

class CpScheduler final : public Scheduler {
 public:
  explicit CpScheduler(const SearchConfig& config) : config_(config) {}

  const char* name() const override { return "cp"; }
  bool claims_optimality() const override { return true; }

  ScheduleResult run(const Machine& machine, const DepGraph& dag,
                     const PipelineState& initial = {}) const override {
    return cp_schedule(machine, dag, config_, initial);
  }

 private:
  SearchConfig config_;
};

}  // namespace pipesched
