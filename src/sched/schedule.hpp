// Schedule representation shared by every scheduler.
//
// A schedule is a permutation of the block's tuple indices together with
// the NOP padding the timing engine derived for it: eta(i) NOPs
// immediately before the i-th scheduled instruction (Definition 4), total
// mu (Definition 5), and the concrete issue cycle of each instruction.
#pragma once

#include <string>
#include <vector>

#include "ir/dag.hpp"
#include "machine/machine.hpp"

namespace pipesched {

struct Schedule {
  std::vector<TupleIndex> order;  ///< Pi: tuple index at each position
  std::vector<int> nops;          ///< eta(i) per position
  std::vector<int> issue_cycle;   ///< t(i): cycle the i-th instruction issues
  std::vector<PipelineId> unit;   ///< pipeline unit chosen per position

  std::size_t size() const { return order.size(); }

  /// mu(Pi): total NOPs required by the schedule.
  int total_nops() const;

  /// Cycle the last instruction issues (n + mu for non-empty schedules).
  int completion_cycle() const;

  /// 1-based position of tuple `t` within the schedule; -1 if absent.
  int position_of(TupleIndex t) const;

  /// Listing with NOPs shown inline, e.g.
  ///   cycle 1: 3: Load #a        [loader]
  ///   cycle 2: NOP
  std::string to_string(const BasicBlock& block, const Machine& machine) const;
};

/// Why a search stopped before exhausting its space (stats.completed ==
/// false). Lambda is the paper's curtail point (Section 2.3); Deadline is
/// the wall-clock budget extension (SearchConfig::deadline_seconds);
/// Cancelled is cooperative cancellation through SearchConfig::cancel
/// (the portfolio racer stopping the losing backend).
enum class CurtailReason { None, Lambda, Deadline, Cancelled };

const char* curtail_reason_name(CurtailReason reason);

/// Which backend a portfolio race was decided by (None outside the
/// portfolio scheduler). When both racers complete they agree on the
/// optimum by construction, and the winner is simply whichever returned
/// first — so this field is diagnostic, never correctness-bearing.
enum class PortfolioWinner { None, Bnb, Cp };

const char* portfolio_winner_name(PortfolioWinner winner);

/// Statistics from one scheduler invocation. Field names follow the
/// paper's Section 4.2.3 terminology.
struct SearchStats {
  /// Lambda: incremental NOP-insertion invocations made during the search
  /// (one per candidate placement attempt; the paper's "calls to omega").
  /// The initial list-schedule evaluation (step [1]) is not counted.
  std::uint64_t omega_calls = 0;

  /// Complete schedules whose cost reached comparison with the incumbent.
  std::uint64_t schedules_examined = 0;

  /// True when the search space was exhausted (termination condition [1]:
  /// result provably optimal); false when the curtail point or the
  /// wall-clock deadline truncated it (condition [2]: possibly
  /// suboptimal). `curtail_reason` says which budget expired.
  bool completed = true;
  CurtailReason curtail_reason = CurtailReason::None;

  /// NOPs of the seed (list) schedule and of the best schedule found.
  /// best_nops is -1 when `feasible` is false: no schedule within the
  /// pressure ceiling exists, so there is no meaningful cost to report.
  int initial_nops = 0;
  int best_nops = 0;

  /// With a register-pressure ceiling: whether a complete schedule within
  /// the ceiling was found (true for unconstrained searches).
  bool feasible = true;

  /// Branches killed per pruning rule (numbering follows the header
  /// comment of optimal_scheduler.hpp). Each counter is one candidate
  /// placement (or subtree) that was skipped because the rule fired:
  ///   window [5a]       candidates displaced by a forced-position slot;
  ///   readiness [5b]    candidates with unplaced predecessors;
  ///   equivalence [5c]  candidates whose class was already tried here;
  ///   alpha-beta [6]    partials already costing >= the incumbent;
  ///   lower bound       partials whose admissible completion bound lost;
  ///   dominance         subtrees cut by the transposition cache (always
  ///                     equals cache_hits; duplicated for uniformity);
  ///   pressure          candidates barred by the register ceiling.
  std::uint64_t pruned_window = 0;
  std::uint64_t pruned_readiness = 0;
  std::uint64_t pruned_equivalence = 0;
  std::uint64_t pruned_alpha_beta = 0;
  std::uint64_t pruned_lower_bound = 0;
  std::uint64_t pruned_dominance = 0;
  std::uint64_t pruned_pressure = 0;

  /// Search-tree nodes expanded (descents into a partial schedule,
  /// including the root and complete leaves). With the dominance cache
  /// enabled this can only shrink: cache hits cut whole subtrees.
  std::uint64_t nodes_expanded = 0;

  /// Dominance-cache traffic (all zero when the cache is disabled).
  /// Invariant: cache_hits + cache_misses == cache_probes; every hit is
  /// one pruned subtree.
  std::uint64_t cache_probes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;   ///< entries displaced (budget full)
  std::uint64_t cache_superseded = 0;  ///< cached cost improved in place
  /// Probes whose 64-bit key matched a cached entry but whose independent
  /// verification word did not — real hash collisions between distinct
  /// states, which an unverified cache would have turned into unsound
  /// prunes. Expected to be ~0 in practice; nonzero values are benign
  /// (the probe degrades to a miss) but worth monitoring.
  std::uint64_t cache_verified_rejects = 0;

  /// Times a complete schedule strictly beat the incumbent (the seed's
  /// initial evaluation is not counted).
  std::uint64_t incumbent_improvements = 0;

  /// Parallel search only: number of disjoint root subtrees the frontier
  /// split produced (0 for sequential searches). For a parallel search the
  /// top-level stats are the frontier pass plus every per-subtree worker
  /// ledger summed; OptimalResult::parallel keeps the unmerged parts.
  std::uint64_t frontier_subtrees = 0;

  /// Portfolio scheduler only: which backend's result this is (None for
  /// every standalone backend). See PortfolioWinner for why this is a
  /// diagnostic, not a correctness signal.
  PortfolioWinner portfolio_winner = PortfolioWinner::None;

  /// True when this result was served from the persistent result cache
  /// (SearchConfig::result_cache_path) instead of a live search. Hits
  /// synthesize a completed SearchStats: best_nops/initial_nops are the
  /// cached values, all search counters are zero, and `seconds` is the
  /// lookup time.
  bool result_cache_hit = false;

  double seconds = 0.0;
};

}  // namespace pipesched
