// Machine-independent list scheduler (paper Section 3.2, [ZaD90]-style).
//
// Produces the seed schedule for the branch-and-bound search: tuples are
// arranged so the distance between each instruction and the instructions
// that depend on it is as large as possible. The heuristic never consults
// the pipeline tables — the paper notes the initial schedule is independent
// of the target pipeline structure — so it ranks purely on DAG shape:
// ready instructions are issued in order of
//   1. greater unit-weight height (longest chain still hanging below it),
//   2. more transitive descendants,
//   3. lower original tuple index (determinism).
// Interleaving the tallest chains first is what stretches producer-to-
// consumer distances.
#pragma once

#include "sched/schedule.hpp"
#include "sched/scheduler.hpp"
#include "sched/timing.hpp"

namespace pipesched {

/// Order the block's tuples by the list heuristic (no timing information).
std::vector<TupleIndex> list_schedule_order(const DepGraph& dag);

/// Convenience: list order evaluated against `machine` (fills NOPs).
/// `initial` carries residual pipeline occupancy at block entry.
Schedule list_schedule(const Machine& machine, const DepGraph& dag,
                       const PipelineState& initial = {});

/// Scheduler-interface wrapper. Heuristic one-shot policy: the stats
/// ledger reports its single schedule as both initial and best, with
/// every search counter at its explicit default.
class ListScheduler final : public Scheduler {
 public:
  const char* name() const override { return "list"; }
  ScheduleResult run(const Machine& machine, const DepGraph& dag,
                     const PipelineState& initial = {}) const override;
};

}  // namespace pipesched
