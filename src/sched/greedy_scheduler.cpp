#include "sched/greedy_scheduler.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace pipesched {

Schedule greedy_schedule(const Machine& machine, const DepGraph& dag,
                         const PipelineState& initial) {
  const std::size_t n = dag.size();
  PipelineTimer timer(machine, dag, initial);

  std::vector<int> unplaced_preds(n);
  std::vector<TupleIndex> ready;
  for (std::size_t i = 0; i < n; ++i) {
    unplaced_preds[i] =
        static_cast<int>(dag.preds(static_cast<TupleIndex>(i)).size());
    if (unplaced_preds[i] == 0) ready.push_back(static_cast<TupleIndex>(i));
  }

  while (!ready.empty()) {
    // Probe each ready instruction for the NOPs it would need now.
    std::size_t best = 0;
    int best_eta = 0;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      const int eta = timer.push(ready[i]);
      timer.pop();
      const bool wins = i == 0 || eta < best_eta ||
                        (eta == best_eta &&
                         (dag.height(ready[i]) > dag.height(ready[best]) ||
                          (dag.height(ready[i]) == dag.height(ready[best]) &&
                           ready[i] < ready[best])));
      if (wins) {
        best = i;
        best_eta = eta;
      }
    }
    const TupleIndex chosen = ready[best];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
    timer.push(chosen);
    for (TupleIndex s : dag.succs(chosen)) {
      if (--unplaced_preds[static_cast<std::size_t>(s)] == 0) {
        ready.push_back(s);
      }
    }
  }
  PS_ASSERT(timer.depth() == n);
  return timer.snapshot();
}

ScheduleResult GreedyScheduler::run(const Machine& machine,
                                    const DepGraph& dag,
                                    const PipelineState& initial) const {
  Timer wall;
  ScheduleResult result;
  result.schedule = greedy_schedule(machine, dag, initial);
  result.stats.initial_nops = result.schedule.total_nops();
  result.stats.best_nops = result.stats.initial_nops;
  result.stats.seconds = wall.seconds();
  return result;
}

}  // namespace pipesched
