#include "sched/cp_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sched/list_scheduler.hpp"
#include "util/check.hpp"
#include "util/profiler.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace pipesched {

namespace {

class CpSearch {
 public:
  CpSearch(const Machine& machine, const DepGraph& dag,
           const SearchConfig& config, const PipelineState& initial)
      : machine_(machine),
        dag_(dag),
        config_(config),
        initial_(initial),
        n_(dag.size()) {}

  ScheduleResult run() {
    PS_TRACE_SPAN("cp_search");
    PS_PROF_PHASE("cp");
    SearchMonitor monitor("cp");
    monitor_ = &monitor;
    // One enabled-check per solve; dfs()'s per-cycle markers test this
    // plain pointer instead of re-loading the atomic enable flag.
    prof_ = profiler_active_stack();
    Timer wall;
    ScheduleResult result;
    SearchStats& stats = result.stats;

    if (config_.deadline_seconds > 0) {
      has_deadline_ = true;
      deadline_at_ =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(config_.deadline_seconds));
    }

    // Seed exactly like the B&B backend: the incumbent returned when the
    // search is curtailed, and the cost the probe range is clipped to.
    std::vector<TupleIndex> seed;
    if (config_.seed_with_list_schedule) {
      seed = list_schedule_order(dag_);
    } else {
      seed.resize(n_);
      for (std::size_t i = 0; i < n_; ++i) seed[i] = static_cast<TupleIndex>(i);
    }
    result.schedule = evaluate_order(machine_, dag_, seed, initial_);
    const int seed_nops = result.schedule.total_nops();
    stats.initial_nops = seed_nops;
    stats.best_nops = seed_nops;
    if (n_ == 0) {
      stats.seconds = wall.seconds();
      flush_search_metrics(stats);
      return result;
    }
    stats_ = &stats;
    init_tables(seed);

    if (config_.max_live_registers > 0 &&
        seed_max_pressure(seed) > config_.max_live_registers) {
      // The list seed violates the ceiling. Pressure is a property of
      // the order alone — no timing — so feasibility is decidable once,
      // up front, by a pure order search with a failed placed-set memo.
      // An admissible order both certifies feasibility and replaces the
      // seed, clipping the probe range to a real schedule's cost instead
      // of the constructive cap (which would mean probing ~n*S horizons,
      // each an exhaustive failure, on infeasible instances).
      std::vector<TupleIndex> repaired;
      PS_PROF_PHASE("pressure_feasibility");
      if (pressure_feasible_order(&repaired)) {
        seed = repaired;
        candidates_by_seed_ = seed;
        result.schedule = evaluate_order(machine_, dag_, seed, initial_);
        stats.initial_nops = result.schedule.total_nops();
        stats.best_nops = stats.initial_nops;
      } else {
        // Proven infeasible (no order fits the ceiling, so no horizon
        // can help) — or curtailed mid-search, in which case
        // completed=false already marks the verdict untrusted. Either
        // way the probe loop has nothing to add.
        stats.feasible = false;
        stats.best_nops = -1;
        stats.seconds = wall.seconds();
        stats_ = nullptr;
        flush_search_metrics(stats);
        return result;
      }
    }
    const int seed_cost = result.schedule.total_nops();
    const int t_lb = makespan_lower_bound();

    // Descend from just below the seed's makespan. Feasibility is
    // monotone in the horizon (any schedule pads upward), so the first
    // infeasible probe proves every lower horizon infeasible too: ONE
    // exhaustive refutation — at one cycle below the optimum — certifies
    // optimality, where an ascending loop would pay one refutation per
    // horizon between the lower bound and the optimum. Each successful
    // probe is a first-completion dive whose cost jumps the next horizon
    // straight to n + cost - 1 ("beat the incumbent by >= one NOP"); a
    // completion meeting t_lb exits without any refutation at all.
    bool found = false;
    std::vector<TupleIndex> best_order;
    std::vector<int> best_group;
    int best_cost = seed_cost;
    for (int horizon = static_cast<int>(n_) + seed_cost - 1;
         horizon >= t_lb;
         horizon = static_cast<int>(n_) + best_cost - 1) {
      reset_probe(horizon);
      bool probe_ok;
      {
        // Pushed once per probe, outside the dfs recursion (markers must
        // never stack with search depth).
        PS_PROF_PHASE("probe_descent");
        probe_ok = dfs(1);
      }
      if (!probe_ok) {
        // A genuine refutation proves the incumbent optimal; a
        // curtailment (completed=false, set by record_curtail) leaves it
        // standing but unproven. Either way probing is over.
        break;
      }
      found = true;
      best_order = order_;
      best_group = group_of_;
      best_cost = nops_used_;
      stats.best_nops = best_cost;  // keep the heartbeat incumbent honest
      stats.schedules_examined += 1;
      stats.incumbent_improvements += 1;
    }

    if (found) {
      // Replay the best (order, group) decisions through the timing
      // engine for the authoritative Schedule. The timer's cycles are
      // pointwise <= the probe's (it places each instruction as early as
      // its constraints allow), and strictly fewer NOPs would contradict
      // the budget that probe searched under — so the costs must agree.
      PipelineTimer timer(machine_, dag_, initial_);
      for (std::size_t i = 0; i < best_order.size(); ++i) {
        const auto& groups =
            machine_.unit_groups(dag_.block().tuple(best_order[i]).op);
        if (groups.empty()) {
          timer.push(best_order[i]);
        } else {
          timer.push(best_order[i],
                     groups[static_cast<std::size_t>(best_group[i])]);
        }
      }
      result.schedule = timer.snapshot();
      PS_CHECK(result.schedule.total_nops() == best_cost,
               "cp replay cost diverged from the probe");
      stats.feasible = true;
      stats.best_nops = best_cost;
    }
    // Not found: the seed result set up above already describes both the
    // refuted case (seed optimal) and the curtailed case (seed kept as
    // incumbent, completed=false recorded by record_curtail).

    stats.seconds = wall.seconds();
    stats_ = nullptr;
    flush_search_metrics(stats);
    return result;
  }

 private:
  void init_tables(const std::vector<TupleIndex>& seed) {
    candidates_by_seed_ = seed;
    cycle_of_.assign(n_, -1);
    lat_of_.assign(n_, 0);
    unplaced_preds_base_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      unplaced_preds_base_[i] =
          static_cast<int>(dag_.preds(static_cast<TupleIndex>(i)).size());
    }
    order_.reserve(n_);
    group_of_.reserve(n_);
    prev_last_.reserve(n_);

    last_base_.assign(machine_.pipeline_count(), PipelineState::kUnitIdle);
    for (std::size_t u = 0;
         u < initial_.unit_last_issue.size() && u < last_base_.size(); ++u) {
      last_base_[u] = initial_.unit_last_issue[u];
    }

    // Strong automorphism classes only (see header). The
    // pressure-constrained refinement (operand-ref multiset +
    // result-ness) makes classmates liveness-interchangeable, so the
    // skip stays on under a register ceiling too.
    classes_ = equivalence_classes(machine_, dag_, /*strong=*/true,
                                   /*pressure_constrained=*/true);
    class_count_ = 0;
    for (int c : classes_) class_count_ = std::max(class_count_, c + 1);

    const std::vector<int> heights = latency_heights(machine_, dag_);
    tail_.resize(n_);
    est0_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      const auto index = static_cast<TupleIndex>(i);
      tail_[i] = std::max(
          heights[i], static_cast<int>(n_) - dag_.latest_position(index));
    }
    // Admissible dependence-edge weight: issues of p and a successor are
    // at least max(1, latency(p)) cycles apart, using the cheapest unit
    // alternative for p (the same weight latency_heights uses).
    edge_w_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      edge_w_[i] = std::max(
          1, machine_.latency_for(dag_.block().tuple(static_cast<TupleIndex>(i)).op));
    }
    est_dyn_.assign(n_, 0);
    // est0 in topological (tuple-index) order: preds always precede.
    for (std::size_t i = 0; i < n_; ++i) {
      const auto index = static_cast<TupleIndex>(i);
      int est = std::max(1, dag_.earliest_position(index));
      for (TupleIndex p : dag_.preds(index)) {
        est = std::max(est, est0_[static_cast<std::size_t>(p)] +
                                edge_w_[static_cast<std::size_t>(p)]);
      }
      const auto& units = machine_.pipelines_for(dag_.block().tuple(index).op);
      if (!units.empty()) {
        int avail = std::numeric_limits<int>::max();
        for (PipelineId u : units) {
          avail = std::min(
              avail, std::max(1, last_base_[static_cast<std::size_t>(u)] +
                                     machine_.pipeline(u).enqueue));
        }
        est = std::max(est, avail);
      }
      est0_[i] = est;
    }

    // Capacity propagation tables: ops whose every unit alternative is
    // one fixed pipeline contend for that pipeline's issue slots at
    // enqueue-interval spacing, a demand the horizon must accommodate.
    sole_unit_.assign(n_, kNoPipeline);
    for (std::size_t i = 0; i < n_; ++i) {
      const auto& units =
          machine_.pipelines_for(dag_.block().tuple(static_cast<TupleIndex>(i)).op);
      if (!units.empty() &&
          std::all_of(units.begin(), units.end(),
                      [&](PipelineId u) { return u == units.front(); })) {
        sole_unit_[i] = units.front();
      }
    }
    unit_pending_.assign(machine_.pipeline_count(), 0);
    unit_max_lst_.assign(machine_.pipeline_count(), 0);

    if (config_.max_live_registers > 0) {
      remaining_uses_base_.assign(n_, 0);
      for (std::size_t i = 0; i < n_; ++i) {
        const Tuple& t = dag_.block().tuple(static_cast<TupleIndex>(i));
        for (const Operand* o : {&t.a, &t.b}) {
          if (o->is_ref()) {
            ++remaining_uses_base_[static_cast<std::size_t>(o->ref)];
          }
        }
      }
      total_uses_ = remaining_uses_base_;
      live_before_.assign(n_, 0);
    }
  }

  int makespan_lower_bound() const {
    int bound = static_cast<int>(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      bound = std::max(bound, est0_[i] + tail_[i]);
    }
    return bound;
  }

  void reset_probe(int horizon) {
    horizon_ = horizon;
    budget_ = horizon - static_cast<int>(n_);
    nops_used_ = 0;
    failed_states_.clear();
    failed_bytes_ = 0;
    std::fill(cycle_of_.begin(), cycle_of_.end(), -1);
    std::fill(lat_of_.begin(), lat_of_.end(), 0);
    unplaced_preds_ = unplaced_preds_base_;
    last_ = last_base_;
    order_.clear();
    group_of_.clear();
    unit_of_.clear();
    prev_last_.clear();
    remaining_uses_ = remaining_uses_base_;
    live_ = 0;
    if (tried_stack_.size() < static_cast<std::size_t>(horizon) + 1) {
      tried_stack_.resize(static_cast<std::size_t>(horizon) + 1,
                          std::vector<char>(class_count_ + 1, 0));
    }
  }

  bool curtailed() {
    if (config_.cancel &&
        config_.cancel->load(std::memory_order_relaxed)) {
      cancelled_ = true;
      return true;
    }
    return deadline_expired_ ||
           (config_.curtail_lambda != 0 &&
            stats_->omega_calls >= config_.curtail_lambda);
  }

  /// Cancellation outranks the clock outranks lambda: once a stronger
  /// signal arrived, the weaker budget no longer describes why we stopped.
  void record_curtail() {
    stats_->completed = false;
    stats_->curtail_reason = cancelled_ ? CurtailReason::Cancelled
                             : deadline_expired_ ? CurtailReason::Deadline
                                                 : CurtailReason::Lambda;
  }

  void slow_tick() {
    if (has_deadline_ && !deadline_expired_ &&
        std::chrono::steady_clock::now() >= deadline_at_) {
      deadline_expired_ = true;
    }
    emit_heartbeat();
  }

  /// CP twin of the B&B heartbeat, on the same 1,024-expansion tick:
  /// trace counters when tracing is on (they self-gate), and the
  /// flight-recorder ring unconditionally so the stall watchdog sees
  /// untraced probes too. The hit rate is the delta since the previous
  /// heartbeat, matching the B&B semantics.
  void emit_heartbeat() {
    trace_counter("search/nodes_expanded",
                  static_cast<double>(stats_->nodes_expanded));
    trace_counter("search/incumbent_nops",
                  static_cast<double>(stats_->best_nops));
    double hit_pct = 0;
    if (stats_->cache_probes > hb_prev_probes_) {
      hit_pct = 100.0 *
                static_cast<double>(stats_->cache_hits - hb_prev_hits_) /
                static_cast<double>(stats_->cache_probes - hb_prev_probes_);
      trace_counter("search/cache_hit_pct", hit_pct);
      hb_prev_probes_ = stats_->cache_probes;
      hb_prev_hits_ = stats_->cache_hits;
    }
    trace_counter("search/depth", static_cast<double>(order_.size()));
    if (monitor_ != nullptr) {
      monitor_->heartbeat(stats_->nodes_expanded, stats_->best_nops,
                          static_cast<std::uint32_t>(order_.size()),
                          hit_pct);
    }
  }

  int unit_avail(PipelineId u) const {
    return last_[static_cast<std::size_t>(u)] + machine_.pipeline(u).enqueue;
  }

  /// DP state signature at a node: everything the subtree below cycle c
  /// depends on, relative to c. Placed tuples contribute only their
  /// latency residue (how far past c their result lands — what unplaced
  /// successors' est sees); unplaced ones a marker; units their enqueue
  /// residue. Pressure state is a function of the placed set, which the
  /// placed/unplaced pattern pins down, and nops_used_ is implied by the
  /// cycle and the placed count. The cycle itself is deliberately NOT
  /// part of the key: every constraint below the node is
  /// translation-invariant given the residues, so a completion starting
  /// at a later cycle shifts left to one starting earlier — failure at
  /// cycle c therefore implies failure at every c' >= c, and the memo
  /// stores the minimum failed cycle per residue state.
  std::string state_key(int cycle) const {
    std::string key;
    key.reserve((n_ + machine_.pipeline_count()) * sizeof(int));
    const auto append = [&key](int v) {
      key.append(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    for (std::size_t i = 0; i < n_; ++i) {
      append(cycle_of_[i] < 0
                 ? -1
                 : std::max(cycle_of_[i] + lat_of_[i] - cycle, 0));
    }
    for (std::size_t u = 0; u < machine_.pipeline_count(); ++u) {
      const auto unit = static_cast<PipelineId>(u);
      append(std::max(last_[u] + machine_.pipeline(unit).enqueue - cycle, 0));
    }
    return key;
  }

  bool pressure_blocks(TupleIndex t) const {
    if (config_.max_live_registers <= 0) return false;
    const bool result = opcode_has_result(dag_.block().tuple(t).op);
    return live_ + (result ? 1 : 0) > config_.max_live_registers;
  }

  void pressure_push(TupleIndex t) {
    if (config_.max_live_registers <= 0) return;
    live_before_[order_.size() - 1] = live_;
    const Tuple& tuple = dag_.block().tuple(t);
    if (opcode_has_result(tuple.op)) ++live_;
    for (const Operand* o : {&tuple.a, &tuple.b}) {
      if (o->is_ref() &&
          --remaining_uses_[static_cast<std::size_t>(o->ref)] == 0) {
        --live_;
      }
    }
    if (opcode_has_result(tuple.op) &&
        total_uses_[static_cast<std::size_t>(t)] == 0) {
      --live_;
    }
  }

  void pressure_pop(TupleIndex t) {
    if (config_.max_live_registers <= 0) return;
    const Tuple& tuple = dag_.block().tuple(t);
    for (const Operand* o : {&tuple.a, &tuple.b}) {
      if (o->is_ref()) ++remaining_uses_[static_cast<std::size_t>(o->ref)];
    }
    live_ = live_before_[order_.size() - 1];
  }

  int seed_max_pressure(const std::vector<TupleIndex>& order) const {
    std::vector<int> uses = total_uses_;
    int live = 0;
    int peak = 0;
    for (TupleIndex t : order) {
      const Tuple& tuple = dag_.block().tuple(t);
      const bool result = opcode_has_result(tuple.op);
      peak = std::max(peak, live + (result ? 1 : 0));
      if (result) ++live;
      for (const Operand* o : {&tuple.a, &tuple.b}) {
        if (o->is_ref() && --uses[static_cast<std::size_t>(o->ref)] == 0) {
          --live;
        }
      }
      if (result && total_uses_[static_cast<std::size_t>(t)] == 0) --live;
    }
    return peak;
  }

  /// Any topological order within the register ceiling? Pure order
  /// search — pressure ignores timing entirely — with a failed
  /// placed-set memo, so the walk is bounded by distinct feasible
  /// prefixes rather than permutations. Fills `out` with an admissible
  /// order when one exists. Honors the curtail budgets; on curtailment
  /// record_curtail() has run and the (false) answer is untrusted.
  bool pressure_feasible_order(std::vector<TupleIndex>* out) {
    std::vector<char> placed(n_, 0);
    std::vector<int> unplaced_preds = unplaced_preds_base_;
    std::vector<int> uses = total_uses_;
    std::unordered_set<std::string> failed;
    out->clear();
    out->reserve(n_);
    return pressure_dfs(out, placed, unplaced_preds, uses, 0, failed);
  }

  bool pressure_dfs(std::vector<TupleIndex>* order, std::vector<char>& placed,
                    std::vector<int>& unplaced_preds, std::vector<int>& uses,
                    int live, std::unordered_set<std::string>& failed) {
    if (order->size() == n_) return true;
    ++stats_->nodes_expanded;
    if ((stats_->nodes_expanded & 1023u) == 0) slow_tick();
    if (curtailed()) {
      record_curtail();
      return false;
    }
    // Live set and remaining uses are functions of the placed *set*, so
    // one failed visit settles every permutation of the prefix.
    std::string key(placed.begin(), placed.end());
    ++stats_->cache_probes;
    if (failed.count(key) != 0) {
      ++stats_->cache_hits;
      ++stats_->pruned_dominance;
      return false;
    }
    for (TupleIndex candidate : candidates_by_seed_) {
      const auto ci = static_cast<std::size_t>(candidate);
      if (placed[ci] || unplaced_preds[ci] != 0) continue;
      const Tuple& tuple = dag_.block().tuple(candidate);
      const bool has_result = opcode_has_result(tuple.op);
      if (live + (has_result ? 1 : 0) > config_.max_live_registers) {
        ++stats_->pruned_pressure;
        continue;
      }
      ++stats_->omega_calls;
      int next_live = live + (has_result ? 1 : 0);
      placed[ci] = 1;
      order->push_back(candidate);
      for (TupleIndex succ : dag_.succs(candidate)) {
        --unplaced_preds[static_cast<std::size_t>(succ)];
      }
      for (const Operand* o : {&tuple.a, &tuple.b}) {
        if (o->is_ref() && --uses[static_cast<std::size_t>(o->ref)] == 0) {
          --next_live;
        }
      }
      if (has_result && total_uses_[ci] == 0) --next_live;
      if (pressure_dfs(order, placed, unplaced_preds, uses, next_live,
                       failed)) {
        return true;
      }
      for (const Operand* o : {&tuple.a, &tuple.b}) {
        if (o->is_ref()) ++uses[static_cast<std::size_t>(o->ref)];
      }
      for (TupleIndex succ : dag_.succs(candidate)) {
        ++unplaced_preds[static_cast<std::size_t>(succ)];
      }
      order->pop_back();
      placed[ci] = 0;
      if (!stats_->completed) return false;
    }
    if (stats_->completed &&
        (failed.size() + 1) * n_ <= config_.dominance_cache_bytes) {
      failed.insert(std::move(key));
    }
    return false;
  }

  void place(TupleIndex t, int group, PipelineId unit, int cycle) {
    cycle_of_[static_cast<std::size_t>(t)] = cycle;
    order_.push_back(t);
    group_of_.push_back(group);
    if (unit == kNoPipeline) {
      prev_last_.push_back(0);
    } else {
      lat_of_[static_cast<std::size_t>(t)] = machine_.pipeline(unit).latency;
      prev_last_.push_back(last_[static_cast<std::size_t>(unit)]);
      last_[static_cast<std::size_t>(unit)] = cycle;
    }
    unit_of_.push_back(unit);
    for (TupleIndex succ : dag_.succs(t)) {
      --unplaced_preds_[static_cast<std::size_t>(succ)];
    }
    pressure_push(t);
  }

  void unplace() {
    const TupleIndex t = order_.back();
    pressure_pop(t);
    for (TupleIndex succ : dag_.succs(t)) {
      ++unplaced_preds_[static_cast<std::size_t>(succ)];
    }
    const PipelineId unit = unit_of_.back();
    if (unit != kNoPipeline) {
      last_[static_cast<std::size_t>(unit)] = prev_last_.back();
      lat_of_[static_cast<std::size_t>(t)] = 0;
    }
    cycle_of_[static_cast<std::size_t>(t)] = -1;
    unit_of_.pop_back();
    prev_last_.pop_back();
    group_of_.pop_back();
    order_.pop_back();
  }

  /// One probe node: fill cycle `c`, or leave it idle. True iff a complete
  /// schedule within the horizon was reached below this node.
  bool dfs(const int cycle) {
    if (order_.size() == n_) return true;
    ++stats_->nodes_expanded;
    if ((stats_->nodes_expanded & 1023u) == 0) slow_tick();
    if (curtailed()) {
      record_curtail();
      return false;
    }

    // Window/propagation pass: every unplaced instruction's dynamic
    // earliest start — propagated through placed predecessors' actual
    // (cycle, latency) and unplaced ones' own earliest starts, in
    // topological tuple-index order — must not overshoot its latest
    // start before the horizon; one whose latest start IS this cycle
    // owns it.
    TupleIndex forced = -1;
    {
      PS_PROF_PHASE_AT(prof_, "propagate");
      std::fill(unit_pending_.begin(), unit_pending_.end(), 0);
      std::fill(unit_max_lst_.begin(), unit_max_lst_.end(), 0);
      for (std::size_t i = 0; i < n_; ++i) {
        if (cycle_of_[i] >= 0) continue;
        int est = std::max(cycle, est0_[i]);
        for (TupleIndex p : dag_.preds(static_cast<TupleIndex>(i))) {
          const auto pi = static_cast<std::size_t>(p);
          est = std::max(est, cycle_of_[pi] >= 0
                                  ? cycle_of_[pi] + lat_of_[pi]
                                  : est_dyn_[pi] + edge_w_[pi]);
        }
        est_dyn_[i] = est;
        const int lst = horizon_ - tail_[i];
        if (est > lst || (lst == cycle && forced >= 0)) {
          ++stats_->pruned_window;
          return false;
        }
        if (lst == cycle) forced = static_cast<TupleIndex>(i);
        if (sole_unit_[i] != kNoPipeline) {
          const auto u = static_cast<std::size_t>(sole_unit_[i]);
          ++unit_pending_[u];
          unit_max_lst_[u] = std::max(unit_max_lst_[u], lst);
        }
      }
      // Capacity propagation: k unplaced ops bound to one unit issue
      // there at enqueue-interval spacing, the first no earlier than the
      // unit frees up, the last no later than the loosest of their
      // windows; an overshoot is a horizon violation (window prune).
      for (std::size_t u = 0; u < unit_pending_.size(); ++u) {
        const int k = unit_pending_[u];
        if (k == 0) continue;
        const auto unit = static_cast<PipelineId>(u);
        const int start = std::max(cycle, unit_avail(unit));
        if (start + (k - 1) * machine_.pipeline(unit).enqueue >
            unit_max_lst_[u]) {
          ++stats_->pruned_window;
          return false;
        }
      }
    }

    // DP memo: permuted prefixes issuing the same tuple set with the same
    // residues share one subtree, so a state that exhaustively failed
    // once fails every time — and, because residues are cycle-relative
    // and completions translate left, a state that failed at cycle c
    // fails at every cycle >= c too (see state_key). Probe-local —
    // feasibility is horizon-dependent, so keys never survive into the
    // next probe.
    std::string state;
    if (config_.dominance_cache) {
      PS_PROF_PHASE_AT(prof_, "memo_probe");
      state = state_key(cycle);
      ++stats_->cache_probes;
      const auto it = failed_states_.find(state);
      if (it != failed_states_.end() && cycle >= it->second) {
        ++stats_->cache_hits;
        ++stats_->pruned_dominance;
        return false;
      }
    }

    std::vector<char>& tried =
        tried_stack_[static_cast<std::size_t>(cycle)];
    std::fill(tried.begin(), tried.end(), 0);

    // True while cycle c is proven better-used than idled: every ready,
    // pressure-admissible candidate can issue right here with all of its
    // units free, so the first instruction of any completion that idles
    // now could instead be moved onto this cycle (see header).
    bool nop_dominated = true;
    // Earliest cycle > c at which some currently blocked (candidate,
    // unit) placement becomes legal — dependence latencies expiring or a
    // busy pipeline freeing up. Nothing becomes issuable strictly
    // between c and this cycle, so idling is branched as one jump.
    int next_event = std::numeric_limits<int>::max();

    for (TupleIndex candidate : candidates_by_seed_) {
      const auto ci = static_cast<std::size_t>(candidate);
      if (cycle_of_[ci] >= 0) continue;
      if (unplaced_preds_[ci] != 0) {
        ++stats_->pruned_readiness;
        continue;
      }
      if (pressure_blocks(candidate)) {
        // Exempt from the NOP-dominance condition: pressure depends on
        // the placed set only, so idling never unblocks this candidate.
        ++stats_->pruned_pressure;
        continue;
      }
      int est = 1;
      for (TupleIndex p : dag_.preds(candidate)) {
        const auto pi = static_cast<std::size_t>(p);
        est = std::max(est, cycle_of_[pi] + lat_of_[pi]);
      }
      if (est > cycle) {
        ++stats_->pruned_readiness;
        nop_dominated = false;
        next_event = std::min(next_event, est);
        continue;
      }
      const auto& groups =
          machine_.unit_groups(dag_.block().tuple(candidate).op);
      for (const auto& group : groups) {
        for (PipelineId u : group) {
          if (unit_avail(u) > cycle) {
            nop_dominated = false;
            break;
          }
        }
        if (!nop_dominated) break;
      }
      if (forced >= 0 && candidate != forced) {
        ++stats_->pruned_window;
        continue;
      }
      {
        const auto cls = static_cast<std::size_t>(classes_[ci]);
        if (tried[cls]) {
          ++stats_->pruned_equivalence;
          continue;
        }
        tried[cls] = 1;
      }

      if (groups.empty()) {
        ++stats_->omega_calls;
        place(candidate, -1, kNoPipeline, cycle);
        if (dfs(cycle + 1)) return true;
        unplace();
        if (!stats_->completed) return false;
      } else {
        for (std::size_t g = 0; g < groups.size(); ++g) {
          PipelineId unit = kNoPipeline;
          for (PipelineId u : groups[g]) {
            if (unit_avail(u) <= cycle) {
              unit = u;
              break;
            }
          }
          if (unit == kNoPipeline) {
            ++stats_->pruned_readiness;  // whole group busy this cycle
            for (PipelineId u : groups[g]) {
              next_event = std::min(next_event, unit_avail(u));
            }
            continue;
          }
          ++stats_->omega_calls;
          place(candidate, static_cast<int>(g), unit, cycle);
          if (dfs(cycle + 1)) return true;
          unplace();
          if (!stats_->completed) return false;
        }
      }
    }

    // Idle branch, taken as one jump to the next event: a completion
    // whose first issue falls strictly between c and the event issues
    // something already issuable at c — exchange it onto c (looser
    // successors/unit constraints, no extra NOPs), which the candidate
    // branches above cover. So only the event cycle itself needs a
    // branch, charging one NOP per skipped cycle.
    if (!nop_dominated && next_event != std::numeric_limits<int>::max()) {
      const int skip = next_event - cycle;
      if (forced >= 0) {
        // Idling is suppressed only because `forced` must issue right
        // here to meet the horizon — a window prune, not a dominance.
        ++stats_->pruned_window;
      } else if (next_event > horizon_) {
        ++stats_->pruned_window;
      } else if (nops_used_ + skip > budget_) {
        ++stats_->pruned_alpha_beta;
      } else {
        ++stats_->omega_calls;
        nops_used_ += skip;
        if (dfs(next_event)) return true;
        nops_used_ -= skip;
      }
    }
    // Memoize only exhaustive failures (a curtailed subtree proves
    // nothing), under the same byte budget as the B&B dominance cache.
    // The stored value is the minimum cycle at which these residues
    // failed; updating an existing entry downward costs no new bytes.
    if (config_.dominance_cache && stats_->completed) {
      const auto it = failed_states_.find(state);
      if (it != failed_states_.end()) {
        it->second = std::min(it->second, cycle);
      } else if (failed_bytes_ + state.size() + sizeof(int) <=
                 config_.dominance_cache_bytes) {
        failed_bytes_ += state.size() + sizeof(int);
        failed_states_.emplace(std::move(state), cycle);
      }
    }
    return false;
  }

  const Machine& machine_;
  const DepGraph& dag_;
  const SearchConfig& config_;
  const PipelineState& initial_;
  const std::size_t n_;
  SearchStats* stats_ = nullptr;

  // Derived once per search.
  std::vector<TupleIndex> candidates_by_seed_;
  std::vector<int> classes_;
  int class_count_ = 0;
  std::vector<int> tail_;
  std::vector<int> est0_;
  std::vector<int> edge_w_;   ///< max(1, min latency) per producer
  std::vector<int> est_dyn_;  ///< per-node scratch: propagated earliest starts
  std::vector<int> unplaced_preds_base_;
  std::vector<int> last_base_;
  std::vector<int> total_uses_;
  std::vector<int> remaining_uses_base_;

  // Probe state.
  int horizon_ = 0;
  int budget_ = 0;
  int nops_used_ = 0;
  std::vector<int> cycle_of_;
  std::vector<int> lat_of_;  ///< latency of the chosen unit, placed only
  std::vector<int> unplaced_preds_;
  std::vector<int> last_;
  std::vector<TupleIndex> order_;
  std::vector<int> group_of_;
  std::vector<PipelineId> unit_of_;
  std::vector<int> prev_last_;
  std::vector<std::vector<char>> tried_stack_;
  std::unordered_map<std::string, int> failed_states_;
  std::size_t failed_bytes_ = 0;
  std::vector<PipelineId> sole_unit_;
  std::vector<int> unit_pending_;   ///< per-node scratch: sole-unit demand
  std::vector<int> unit_max_lst_;  ///< per-node scratch: loosest window
  std::vector<int> remaining_uses_;
  std::vector<int> live_before_;
  int live_ = 0;

  // Budgets.
  bool has_deadline_ = false;
  bool deadline_expired_ = false;
  bool cancelled_ = false;
  std::chrono::steady_clock::time_point deadline_at_{};

  // Observability: flight recorder + heartbeat-delta baselines.
  SearchMonitor* monitor_ = nullptr;
  prof_detail::PhaseStack* prof_ = nullptr;  ///< captured once per run()
  std::uint64_t hb_prev_probes_ = 0;
  std::uint64_t hb_prev_hits_ = 0;
};

}  // namespace

ScheduleResult cp_schedule(const Machine& machine, const DepGraph& dag,
                           const SearchConfig& config,
                           const PipelineState& initial) {
  return CpSearch(machine, dag, config, initial).run();
}

}  // namespace pipesched
